#include "exec/hash_table.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace {

Batch MakeBatch() {
  Batch b;
  ColumnVector i(TypeId::kInt32);
  i.i32 = {7, 7, 9};
  ColumnVector l(TypeId::kInt64);
  l.i64 = {100, 200, 100};
  ColumnVector s(TypeId::kString);
  s.dict = std::make_shared<Dictionary>();
  for (const char* v : {"x", "y", "x"}) s.i32.push_back(s.dict->GetOrAdd(v));
  ColumnVector f(TypeId::kFloat64);
  f.f64 = {1.0, 2.0, 1.0};
  b.columns = {std::move(i), std::move(l), std::move(s), std::move(f)};
  b.num_rows = 3;
  return b;
}

Schema MakeSchema() {
  return Schema({{"i", TypeId::kInt32},
                 {"l", TypeId::kInt64},
                 {"s", TypeId::kString},
                 {"f", TypeId::kFloat64}});
}

TEST(KeyEncoderTest, IntFastPath) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i"}).ok());
  EXPECT_TRUE(enc.int_path());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(keys, (std::vector<int64_t>{7, 7, 9}));
  EXPECT_EQ(valid, (std::vector<uint8_t>{1, 1, 1}));
}

TEST(KeyEncoderTest, BytesPathForFloatsAndWideComposites) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"f"}).ok());
  EXPECT_FALSE(enc.int_path());
  KeyEncoder enc2;
  ASSERT_TRUE(enc2.Bind(MakeSchema(), {"i", "l"}).ok());  // i64 not packable
  EXPECT_FALSE(enc2.int_path());

  std::vector<std::string> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc2.EncodeBytes(b, &keys, &valid);
  EXPECT_EQ(keys[0].size(), 14u);  // (1 tag + 4) + (1 tag + 8) bytes
  EXPECT_NE(keys[0], keys[1]);     // (7,100) vs (7,200)
  EXPECT_NE(keys[0], keys[2]);     // (7,100) vs (9,100)

  // String keys compare by content, not code.
  KeyEncoder enc3;
  ASSERT_TRUE(enc3.Bind(MakeSchema(), {"s", "f"}).ok());
  EXPECT_FALSE(enc3.int_path());
  enc3.EncodeBytes(b, &keys, &valid);
  EXPECT_EQ(keys[0], keys[2]);  // both ("x", 1.0)
  EXPECT_NE(keys[0], keys[1]);
}

TEST(KeyEncoderTest, SingleStringKeyUsesDictCodePath) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"s"}).ok());
  EXPECT_TRUE(enc.int_path());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(keys[0], keys[2]);  // both "x"
  EXPECT_NE(keys[0], keys[1]);
  EXPECT_EQ(valid, (std::vector<uint8_t>{1, 1, 1}));

  // A later batch with a *different* dictionary (same strings in another
  // insertion order) must produce the same keys: codes canonicalize against
  // the first dictionary seen.
  Batch b2 = MakeBatch();
  b2.columns[2].dict = std::make_shared<Dictionary>();
  b2.columns[2].i32.clear();
  for (const char* v : {"y", "x", "zebra"}) {
    b2.columns[2].i32.push_back(b2.columns[2].dict->GetOrAdd(v));
  }
  std::vector<int64_t> keys2;
  enc.EncodeInts(b2, &keys2, &valid);
  EXPECT_EQ(keys2[1], keys[0]);  // "x" matches batch 1's "x"
  EXPECT_EQ(keys2[0], keys[1]);  // "y" matches batch 1's "y"
  EXPECT_NE(keys2[2], keys[0]);  // "zebra" is a fresh, stable side id
  EXPECT_NE(keys2[2], keys[1]);
  std::vector<int64_t> keys3;
  enc.EncodeInts(b2, &keys3, &valid);
  EXPECT_EQ(keys3[2], keys2[2]);  // stable across batches
}

TEST(KeyEncoderTest, PackedPairPath) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i", "s"}).ok());
  EXPECT_TRUE(enc.int_path());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  Batch b = MakeBatch();
  enc.EncodeInts(b, &keys, &valid);
  // Rows: (7,"x"), (7,"y"), (9,"x") — all distinct, none equal.
  EXPECT_NE(keys[0], keys[1]);
  EXPECT_NE(keys[0], keys[2]);
  EXPECT_NE(keys[1], keys[2]);
  // Same logical tuple encodes identically.
  std::vector<int64_t> again;
  enc.EncodeInts(b, &again, &valid);
  EXPECT_EQ(keys, again);
}

TEST(KeyEncoderTest, SelAwareEncoding) {
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i"}).ok());
  Batch b = MakeBatch();
  b.sel = {2, 0};
  b.num_rows = 2;
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(keys, (std::vector<int64_t>{9, 7}));
}

TEST(KeyEncoderTest, ProbeResolvesAgainstBuildSpace) {
  KeyEncoder build;
  ASSERT_TRUE(build.Bind(MakeSchema(), {"s"}).ok());
  std::vector<int64_t> bkeys;
  std::vector<uint8_t> valid;
  Batch bb = MakeBatch();
  build.EncodeInts(bb, &bkeys, &valid);

  // Probe batch with its own dictionary: "x" must map to the build key,
  // "nope" must map to a key matching nothing (and not crash).
  Batch pb = MakeBatch();
  pb.columns[2].dict = std::make_shared<Dictionary>();
  pb.columns[2].i32.clear();
  for (const char* v : {"nope", "x", "nope"}) {
    pb.columns[2].i32.push_back(pb.columns[2].dict->GetOrAdd(v));
  }
  KeyEncoder probe;
  ASSERT_TRUE(probe.BindProbe(MakeSchema(), {"s"}, &build).ok());
  std::vector<int64_t> pkeys;
  probe.EncodeInts(pb, &pkeys, &valid);
  EXPECT_EQ(pkeys[1], bkeys[0]);  // "x"
  EXPECT_NE(pkeys[0], bkeys[0]);
  EXPECT_NE(pkeys[0], bkeys[1]);
}

TEST(KeyEncoderTest, TranslationCacheSurvivesDictionaryAddressReuse) {
  // Per-batch dictionaries (e.g. expression-generated strings) are freed
  // between batches; the allocator may hand the next batch's equal-sized
  // dictionary the same heap address. The translation cache must not
  // validate by address and reuse the previous dictionary's mapping.
  Schema schema({{"s", TypeId::kString}});
  auto make_batch = [](std::initializer_list<const char*> dict_order) {
    Batch b;
    ColumnVector s(TypeId::kString);
    s.dict = std::make_shared<Dictionary>();
    for (const char* v : dict_order) s.dict->GetOrAdd(v);
    s.i32 = {s.dict->Find("a"), s.dict->Find("b")};
    b.columns = {std::move(s)};
    b.num_rows = 2;
    return b;
  };

  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(schema, {"s"}).ok());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  Batch b1 = make_batch({"a", "b"});  // adopted as canonical space
  enc.EncodeInts(b1, &keys, &valid);
  std::vector<int64_t> canon_keys = keys;

  // Fill the cache from a dictionary with the opposite code order, then
  // free it so its address can be reused.
  {
    Batch b2 = make_batch({"b", "a"});
    enc.EncodeInts(b2, &keys, &valid);
    EXPECT_EQ(keys, canon_keys);  // same strings -> same keys
  }
  // Same-sized fresh dictionary, canonical order: if the stale cache were
  // revalidated by address, "a" would encode as "b" and vice versa.
  Batch b3 = make_batch({"a", "b"});
  enc.EncodeInts(b3, &keys, &valid);
  EXPECT_EQ(keys, canon_keys);
}

TEST(KeyEncoderTest, NullKeysFlaggedInvalid) {
  Batch b = MakeBatch();
  b.columns[0].nulls = {0, 1, 0};
  KeyEncoder enc;
  ASSERT_TRUE(enc.Bind(MakeSchema(), {"i"}).ok());
  std::vector<int64_t> keys;
  std::vector<uint8_t> valid;
  enc.EncodeInts(b, &keys, &valid);
  EXPECT_EQ(valid, (std::vector<uint8_t>{1, 0, 1}));
  KeyEncoder enc2;
  ASSERT_TRUE(enc2.Bind(MakeSchema(), {"i", "l"}).ok());
  std::vector<std::string> bkeys;
  enc2.EncodeBytes(b, &bkeys, &valid);
  EXPECT_EQ(valid[1], 0);
}

TEST(KeyEncoderTest, ProbeRejectsPositionallyMismatchedPackedKeys) {
  // Both sides bind as kPacked, but the build packs dictionary codes where
  // the probe would pack raw integers — equal bit patterns must not join.
  KeyEncoder build;
  ASSERT_TRUE(build.Bind(MakeSchema(), {"s", "i"}).ok());
  KeyEncoder probe;
  EXPECT_FALSE(probe.BindProbe(MakeSchema(), {"i", "i"}, &build).ok());
  KeyEncoder ok_probe;
  EXPECT_TRUE(ok_probe.BindProbe(MakeSchema(), {"s", "i"}, &build).ok());
}

TEST(KeyEncoderTest, MissingColumnFailsBind) {
  KeyEncoder enc;
  EXPECT_FALSE(enc.Bind(MakeSchema(), {"nope"}).ok());
}

TEST(DenseKeyMapTest, DenseIdsInsertionOrder) {
  DenseKeyMap map;
  bool inserted;
  EXPECT_EQ(map.FindOrInsert(100, &inserted), 0);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.FindOrInsert(-5, &inserted), 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.FindOrInsert(100, &inserted), 0);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(map.Find(-5), 1);
  EXPECT_EQ(map.Find(42), -1);
  EXPECT_EQ(map.size(), 2u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(DenseKeyMapTest, BytesMode) {
  DenseKeyMap map;
  bool inserted;
  EXPECT_EQ(map.FindOrInsert(std::string("abc"), &inserted), 0);
  EXPECT_EQ(map.FindOrInsert(std::string("def"), &inserted), 1);
  EXPECT_EQ(map.Find(std::string("abc")), 0);
  EXPECT_GT(map.MemoryBytes(), 0u);
}

TEST(JoinHashTableTest, ChainsDuplicates) {
  JoinHashTable table;
  ASSERT_TRUE(table.Init(MakeSchema(), {"i"}).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  EXPECT_EQ(table.num_rows(), 6u);
  int matches_7 = 0, matches_9 = 0;
  table.ForEachMatch(int64_t{7}, [&](BuildRowRef) { ++matches_7; });
  table.ForEachMatch(int64_t{9}, [&](BuildRowRef) { ++matches_9; });
  EXPECT_EQ(matches_7, 4);
  EXPECT_EQ(matches_9, 2);
  EXPECT_TRUE(table.HasMatch(int64_t{7}));
  EXPECT_FALSE(table.HasMatch(int64_t{8}));
  EXPECT_GT(table.MemoryBytes(), 0u);
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_FALSE(table.HasMatch(int64_t{7}));
}

TEST(JoinHashTableTest, MaterializedColumnsPreserveValues) {
  JoinHashTable table;
  ASSERT_TRUE(table.Init(MakeSchema(), {"i"}).ok());
  ASSERT_TRUE(table.AddBatch(MakeBatch()).ok());
  table.ForEachMatch(int64_t{9}, [&](BuildRowRef build) {
    EXPECT_EQ((*build.columns)[1].i64[build.row], 100);
    EXPECT_EQ((*build.columns)[2].GetString(build.row), "x");
    EXPECT_DOUBLE_EQ((*build.columns)[3].f64[build.row], 1.0);
  });
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
