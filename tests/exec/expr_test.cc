#include "exec/expr.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace {

Batch MakeBatch() {
  Batch b;
  ColumnVector i(TypeId::kInt32);
  i.i32 = {1, 2, 3, 4};
  ColumnVector f(TypeId::kFloat64);
  f.f64 = {1.5, -2.0, 0.0, 8.0};
  ColumnVector s(TypeId::kString);
  s.dict = std::make_shared<Dictionary>();
  for (const char* v : {"PROMO BRUSHED TIN", "STANDARD PLATED BRASS",
                        "PROMO ANODIZED STEEL", "SMALL BURNISHED COPPER"}) {
    s.i32.push_back(s.dict->GetOrAdd(v));
  }
  ColumnVector d(TypeId::kDate);
  d.i32 = {ParseDate("1994-01-01"), ParseDate("1994-06-15"),
           ParseDate("1995-12-31"), ParseDate("1998-08-02")};
  b.columns = {std::move(i), std::move(f), std::move(s), std::move(d)};
  b.num_rows = 4;
  return b;
}

Schema MakeSchema() {
  return Schema({{"i", TypeId::kInt32},
                 {"f", TypeId::kFloat64},
                 {"s", TypeId::kString},
                 {"d", TypeId::kDate}});
}

ColumnVector Eval(ExprPtr e) {
  Batch b = MakeBatch();
  Schema s = MakeSchema();
  EXPECT_TRUE(e->Bind(s).ok());
  return e->Eval(b).ValueOrDie();
}

TEST(ExprTest, ColRef) {
  ColumnVector v = Eval(Col("i"));
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.i32[2], 3);
}

TEST(ExprTest, UnknownColumnFailsBind) {
  ExprPtr e = Col("nope");
  EXPECT_FALSE(e->Bind(MakeSchema()).ok());
}

TEST(ExprTest, Arithmetic) {
  ColumnVector v = Eval(Add(Col("i"), Col("i")));
  EXPECT_EQ(v.type, TypeId::kInt64);
  EXPECT_EQ(v.i64[3], 8);
  ColumnVector m = Eval(Mul(Col("f"), LitF64(2.0)));
  EXPECT_EQ(m.type, TypeId::kFloat64);
  EXPECT_DOUBLE_EQ(m.f64[0], 3.0);
  // Int/float promotion.
  ColumnVector p = Eval(Sub(Col("i"), Col("f")));
  EXPECT_EQ(p.type, TypeId::kFloat64);
  EXPECT_DOUBLE_EQ(p.f64[1], 4.0);
  // Division by zero yields 0 (documented).
  ColumnVector dz = Eval(Div(Col("i"), Col("f")));
  EXPECT_DOUBLE_EQ(dz.f64[2], 0.0);
}

TEST(ExprTest, Comparisons) {
  ColumnVector v = Eval(Ge(Col("i"), LitI64(3)));
  EXPECT_EQ(v.i32[0], 0);
  EXPECT_EQ(v.i32[2], 1);
  ColumnVector s = Eval(Eq(Col("s"), LitStr("PROMO ANODIZED STEEL")));
  EXPECT_EQ(s.i32[2], 1);
  EXPECT_EQ(s.i32[0], 0);
  ColumnVector d =
      Eval(Lt(Col("d"), LitDate("1995-01-01")));
  EXPECT_EQ(d.i32[1], 1);
  EXPECT_EQ(d.i32[2], 0);
}

TEST(ExprTest, MixedStringNumericComparisonFailsBind) {
  ExprPtr e = Eq(Col("s"), LitI64(3));
  EXPECT_FALSE(e->Bind(MakeSchema()).ok());
}

TEST(ExprTest, BooleanConnectives) {
  ColumnVector v = Eval(
      And(Gt(Col("i"), LitI64(1)), Lt(Col("i"), LitI64(4))));
  EXPECT_EQ(v.i32[0], 0);
  EXPECT_EQ(v.i32[1], 1);
  EXPECT_EQ(v.i32[3], 0);
  ColumnVector n = Eval(Not(Gt(Col("i"), LitI64(2))));
  EXPECT_EQ(n.i32[0], 1);
  EXPECT_EQ(n.i32[3], 0);
  ColumnVector o = Eval(
      Or(Eq(Col("i"), LitI64(1)), Eq(Col("i"), LitI64(4))));
  EXPECT_EQ(o.i32[0], 1);
  EXPECT_EQ(o.i32[2], 0);
}

TEST(ExprTest, Between) {
  ColumnVector v = Eval(Between(Col("i"), LitI64(2), LitI64(3)));
  EXPECT_EQ(v.i32[0], 0);
  EXPECT_EQ(v.i32[1], 1);
  EXPECT_EQ(v.i32[2], 1);
  EXPECT_EQ(v.i32[3], 0);
}

TEST(ExprTest, LikeAndPrefix) {
  ColumnVector v = Eval(Like(Col("s"), "PROMO%"));
  EXPECT_EQ(v.i32[0], 1);
  EXPECT_EQ(v.i32[1], 0);
  EXPECT_EQ(v.i32[2], 1);
  ColumnVector n = Eval(NotLike(Col("s"), "%BRASS"));
  EXPECT_EQ(n.i32[1], 0);
  EXPECT_EQ(n.i32[0], 1);
  ColumnVector p = Eval(StrPrefix(Col("s"), 5));
  EXPECT_EQ(p.GetString(0), "PROMO");
  EXPECT_EQ(p.GetString(3), "SMALL");
}

TEST(ExprTest, LikeMatchSemantics) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%o w%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_llo!"));
  EXPECT_TRUE(LikeMatch("special packages wake requests",
                        "%special%requests%"));
  EXPECT_FALSE(LikeMatch("requests then special", "%special%requests%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  // Backtracking: % must be able to re-expand.
  EXPECT_TRUE(LikeMatch("aabab", "a%ab"));
}

TEST(ExprTest, InLists) {
  ColumnVector v = Eval(InInts(Col("i"), {2, 4, 99}));
  EXPECT_EQ(v.i32[0], 0);
  EXPECT_EQ(v.i32[1], 1);
  EXPECT_EQ(v.i32[3], 1);
  ColumnVector s = Eval(InStrings(
      Col("s"), {"PROMO BRUSHED TIN", "SMALL BURNISHED COPPER"}));
  EXPECT_EQ(s.i32[0], 1);
  EXPECT_EQ(s.i32[1], 0);
  EXPECT_EQ(s.i32[3], 1);
}

TEST(ExprTest, CaseWhen) {
  ColumnVector v = Eval(CaseWhen(Gt(Col("i"), LitI64(2)),
                                 Mul(Col("f"), LitF64(10.0)), LitF64(-1.0)));
  EXPECT_EQ(v.type, TypeId::kFloat64);
  EXPECT_DOUBLE_EQ(v.f64[0], -1.0);
  EXPECT_DOUBLE_EQ(v.f64[3], 80.0);
}

TEST(ExprTest, Year) {
  ColumnVector v = Eval(Year(Col("d")));
  EXPECT_EQ(v.i32[0], 1994);
  EXPECT_EQ(v.i32[2], 1995);
  EXPECT_EQ(v.i32[3], 1998);
}

TEST(ExprTest, NullHandling) {
  Batch b = MakeBatch();
  b.columns[0].nulls = {0, 1, 0, 0};  // i: row 1 NULL
  Schema schema = MakeSchema();
  ExprPtr isnull = IsNull(Col("i"));
  ASSERT_TRUE(isnull->Bind(schema).ok());
  ColumnVector v = isnull->Eval(b).ValueOrDie();
  EXPECT_EQ(v.i32[0], 0);
  EXPECT_EQ(v.i32[1], 1);
  // Comparisons with NULL are false.
  ExprPtr cmp = Eq(Col("i"), LitI64(2));
  ASSERT_TRUE(cmp->Bind(schema).ok());
  ColumnVector c = cmp->Eval(b).ValueOrDie();
  EXPECT_EQ(c.i32[1], 0);
  // Coalesce replaces nulls (fallback must match the primary's type).
  ExprPtr co = Coalesce(Col("i"), Lit(Value::Int32(42)));
  ASSERT_TRUE(co->Bind(schema).ok());
  ColumnVector cv = co->Eval(b).ValueOrDie();
  EXPECT_EQ(cv.i32[1], 42);
  EXPECT_EQ(cv.i32[0], 1);
}

TEST(ExprTest, ToStringSmoke) {
  ExprPtr e = And(Ge(Col("i"), LitI64(3)), Like(Col("s"), "PROMO%"));
  EXPECT_NE(e->ToString().find("i>="), std::string::npos);
  EXPECT_NE(e->ToString().find("LIKE"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
