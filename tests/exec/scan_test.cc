// Scan operators: zone-map skipping, group-tagged emission, batch
// coalescing, and I/O accounting through the buffer pool.
#include "exec/scan.h"

#include "bdcc/binning.h"
#include "catalog/catalog.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace {

class NoFkResolver : public TableResolver {
 public:
  explicit NoFkResolver(const Table* t) : t_(t) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    if (name == t_->name()) return t_;
    return Status::NotFound(name);
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return Status::NotFound(id);
  }

 private:
  const Table* t_;
};

Table SortedTable(uint64_t rows) {
  Table t("T");
  Column k(TypeId::kInt32), v(TypeId::kFloat64);
  for (uint64_t i = 0; i < rows; ++i) {
    k.AppendInt32(static_cast<int32_t>(i));
    v.AppendFloat64(static_cast<double>(i) * 0.5);
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  t.BuildZoneMaps(100);
  return t;
}

TEST(PlainScanTest, EmitsAllRows) {
  Table t = SortedTable(2500);
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k", "v"});
  uint64_t rows = 0;
  int32_t expect = 0;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    for (size_t i = 0; i < b.num_rows; ++i) {
      EXPECT_EQ(b.columns[0].i32[i], expect++);
    }
    rows += b.num_rows;
    EXPECT_LE(b.num_rows, ctx.batch_size());
  }
  EXPECT_EQ(rows, 2500u);
  EXPECT_EQ(ctx.stats()->rows_scanned, 2500u);
}

TEST(PlainScanTest, ZoneSkipping) {
  Table t = SortedTable(1000);  // 10 zones of 100 sorted values
  ExecContext ctx(nullptr);
  PlainScan scan(&t, {"k"},
                 {{"k", ValueRange{Value::Int32(250), Value::Int32(349)}}});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    rows += b.num_rows;
  }
  // Zones 2 and 3 survive: 200 rows read, 8 zones skipped. (Row-level
  // filtering is the planner's Filter, not the scan.)
  EXPECT_EQ(rows, 200u);
  EXPECT_EQ(ctx.stats()->zones_skipped, 8u);
}

TEST(PlainScanTest, ChargesBufferPoolIo) {
  Table t = SortedTable(10000);
  io::DeviceModel dev{io::DeviceProfile::SsdRaid0()};
  io::BufferPool pool(&dev, 1ull << 30);
  t.RegisterWithBufferPool(&pool);
  ExecContext ctx(&pool);
  PlainScan scan(&t, {"k", "v"});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  while (!scan.Next(&ctx).ValueOrDie().empty()) {
  }
  EXPECT_GT(dev.stats().bytes_read, 100000u);  // 40KB + 80KB of columns
  // Pool-less context: no charges.
  io::IoStats before = dev.stats();
  ExecContext ctx2(nullptr);
  PlainScan scan2(&t, {"k"});
  ASSERT_TRUE(scan2.Open(&ctx2).ok());
  while (!scan2.Next(&ctx2).ValueOrDie().empty()) {
  }
  EXPECT_EQ(dev.stats().bytes_read, before.bytes_read);
}

class BdccScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = std::make_unique<Table>(Table("T"));
    Column k(TypeId::kInt32), v(TypeId::kFloat64);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
      k.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 1023)));
      v.AppendFloat64(rng.NextDouble());
    }
    source_->AddColumn("k", std::move(k)).AbortIfNotOK();
    source_->AddColumn("v", std::move(v)).AbortIfNotOK();
    auto dim = binning::CreateRangeDimension("D", "T", "k", 0, 1023, 5)
                   .ValueOrDie();
    std::vector<DimensionUse> uses(1);
    uses[0].dimension = std::make_shared<const Dimension>(std::move(dim));
    NoFkResolver resolver(source_.get());
    BdccBuildOptions options;
    options.tuning.efficient_access_bytes = 2048;
    table_ = std::make_unique<BdccTable>(
        BuildBdccTable(source_->Clone(), uses, resolver, options)
            .ValueOrDie());
  }

  std::unique_ptr<Table> source_;
  std::unique_ptr<BdccTable> table_;
};

TEST_F(BdccScanTest, NaturalScanCoversEverything) {
  ExecContext ctx(nullptr);
  BdccScan scan(table_.get(), {"k", "v"}, PlanNaturalScan(*table_));
  ASSERT_TRUE(scan.Open(&ctx).ok());
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    EXPECT_EQ(b.group_id, -1);  // ungrouped scan
    rows += b.num_rows;
  }
  EXPECT_EQ(rows, 20000u);
}

TEST_F(BdccScanTest, GroupedEmissionIsAlignedAndAscending) {
  int own_bits = bits::Ones(table_->ReducedMask(0));
  ASSERT_GT(own_bits, 1);
  int shared = own_bits - 1;  // coarser than the table's own granularity
  ExecContext ctx(nullptr);
  BdccScan scan(table_.get(), {"k"}, PlanNaturalScan(*table_), {},
                {GroupSpec{0, shared}});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  int64_t prev = -1;
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    ASSERT_GE(b.group_id, prev);  // ascending; never mixes ids in a batch
    prev = b.group_id;
    // Every row's dimension bin prefix matches the batch's group id.
    for (size_t i = 0; i < b.num_rows; ++i) {
      uint64_t bin = table_->uses()[0].dimension->BinOfInt(b.columns[0].i32[i]);
      int dim_bits = table_->uses()[0].dimension->bits();
      EXPECT_EQ(static_cast<int64_t>(bin >> (dim_bits - shared)), b.group_id);
    }
    rows += b.num_rows;
  }
  EXPECT_EQ(rows, 20000u);
}

TEST_F(BdccScanTest, PrunedRangesSkipRows) {
  // Restrict dimension bins to the top half.
  uint64_t lo, hi;
  ASSERT_TRUE(table_->BinRangeToGroupPrefix(
      0, uint64_t{1} << (table_->uses()[0].dimension->bits() - 1),
      (uint64_t{1} << table_->uses()[0].dimension->bits()) - 1, &lo, &hi));
  auto ranges =
      FilterGroupsByPrefix(*table_, PlanNaturalScan(*table_), 0, lo, hi);
  ExecContext ctx(nullptr);
  BdccScan scan(table_.get(), {"k"}, std::move(ranges), {}, {}, 99);
  ASSERT_TRUE(scan.Open(&ctx).ok());
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    for (size_t i = 0; i < b.num_rows; ++i) {
      EXPECT_GE(b.columns[0].i32[i], 512);
    }
    rows += b.num_rows;
  }
  EXPECT_GT(rows, 8000u);
  EXPECT_LT(rows, 12000u);
  EXPECT_EQ(ctx.stats()->groups_pruned, 99u);  // planner-provided count
}

TEST_F(BdccScanTest, ZonePredicatesSkipWithinClustering) {
  // The table is clustered on k, so zones are selective for k-ranges.
  ExecContext ctx(nullptr);
  BdccScan scan(table_.get(), {"k"}, PlanNaturalScan(*table_),
                {{"k", ValueRange{Value::Int32(0), Value::Int32(99)}}});
  ASSERT_TRUE(scan.Open(&ctx).ok());
  uint64_t rows = 0;
  while (true) {
    Batch b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    rows += b.num_rows;
  }
  EXPECT_LT(rows, 5000u);  // most zones skipped
  EXPECT_GT(ctx.stats()->zones_skipped, 10u);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
