// The re-Open contract the serving layer's retry path depends on: after a
// ResourceExhausted unwind (CollectAll closed the tree, tracked memory
// drained, QueryControl error cleared), the *same* operator tree must be
// re-openable in-process with a larger budget and produce the correct
// result — no operator may serve stale state cached from the failed cycle.
// Also pins the ParallelHashAgg schema-after-Close regression: CollectAll
// builds its typed-empty result from op->schema() after Close, so schema()
// must not reach into state Close destroys.
#include <memory>
#include <vector>

#include "exec/exec_context.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace bdcc {
namespace exec {
namespace {

class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<Batch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override {
    at_ = 0;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext*) override {
    if (at_ >= batches_.size()) return Batch::Empty();
    Batch out;
    const Batch& src = batches_[at_++];
    out.num_rows = src.num_rows;
    out.group_id = src.group_id;
    out.columns = src.columns;
    return out;
  }

 private:
  Schema schema_;
  std::vector<Batch> batches_;
  size_t at_ = 0;
};

Schema S() {
  return Schema({{"k", TypeId::kInt32}, {"v", TypeId::kFloat64}});
}

Batch B(std::vector<int32_t> keys, std::vector<double> vals) {
  Batch b;
  ColumnVector k(TypeId::kInt32), v(TypeId::kFloat64);
  k.i32 = std::move(keys);
  v.f64 = std::move(vals);
  b.num_rows = k.i32.size();
  b.columns = {std::move(k), std::move(v)};
  b.group_id = -1;
  return b;
}

std::vector<Batch> ManyGroups(int n) {
  std::vector<int32_t> keys;
  std::vector<double> vals;
  for (int i = 0; i < n; ++i) {
    keys.push_back(i);
    vals.push_back(static_cast<double>(i));
  }
  std::vector<Batch> out;
  out.push_back(B(std::move(keys), std::move(vals)));
  return out;
}

TEST(ReopenTest, HashAggReopensAfterBudgetUnwind) {
  auto src = std::make_unique<VectorSource>(S(), ManyGroups(512));
  HashAgg agg(std::move(src), {"k"}, {AggSum(Col("v"), "s")});

  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(1);  // any group state overflows one byte
  auto capped = CollectAll(&agg, &ctx);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted())
      << capped.status().ToString();
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u)
      << "budget unwind leaked tracked memory";
  EXPECT_TRUE(ctx.control()->Check().ok())
      << "CollectAll left the surfaced error on the control";

  // The serving layer's retry: same context, same tree, larger budget.
  ctx.PrepareRerun(/*new_limit_bytes=*/0);
  auto retried = CollectAll(&agg, &ctx);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().num_rows, 512u);
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);
}

TEST(ReopenTest, EscalatingBudgetEventuallySucceedsOnSameTree) {
  auto src = std::make_unique<VectorSource>(S(), ManyGroups(1024));
  HashAgg agg(std::move(src), {"k"}, {AggSum(Col("v"), "s")});
  ExecContext ctx(nullptr);

  uint64_t budget = 64;
  int attempts = 0;
  while (true) {
    ++attempts;
    ctx.PrepareRerun(budget);
    auto result = CollectAll(&agg, &ctx);
    if (result.ok()) {
      EXPECT_EQ(result.value().num_rows, 1024u);
      break;
    }
    ASSERT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
    EXPECT_EQ(ctx.memory()->current_bytes(), 0u)
        << "attempt " << attempts << " leaked";
    budget *= 4;
    ASSERT_LT(attempts, 20) << "budget escalation never converged";
  }
  EXPECT_GT(attempts, 1) << "first budget was too generous to test the loop";
}

TEST(ReopenTest, HashJoinReopensAfterBudgetUnwind) {
  auto build = std::make_unique<VectorSource>(S(), ManyGroups(256));
  auto probe = std::make_unique<VectorSource>(S(), ManyGroups(256));
  HashJoin join(std::move(probe), std::move(build), {"k"}, {"k"},
                JoinType::kInner);

  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(1);
  auto capped = CollectAll(&join, &ctx);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted());
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);

  ctx.PrepareRerun(0);
  auto retried = CollectAll(&join, &ctx);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().num_rows, 256u);
}

TEST(ReopenTest, ParallelHashAggReopensAfterBudgetUnwind) {
  common::TaskScheduler scheduler(2);
  auto factory = [](size_t i, size_t total) -> Result<OperatorPtr> {
    // Disjoint key ranges per clone, 4096 groups total so every cycle runs
    // the radix-partitioned merge.
    std::vector<int32_t> keys;
    std::vector<double> vals;
    for (int k = static_cast<int>(i); k < 8192; k += static_cast<int>(total)) {
      keys.push_back(k);
      vals.push_back(1.0);
    }
    std::vector<Batch> batches;
    batches.push_back(B(std::move(keys), std::move(vals)));
    return OperatorPtr(
        std::make_unique<VectorSource>(S(), std::move(batches)));
  };
  ParallelHashAgg agg(factory, /*num_clones=*/2, {"k"},
                      {AggSum(Col("v"), "s")}, &scheduler);

  ExecContext ctx(nullptr);
  ctx.memory()->set_limit(512);
  auto capped = CollectAll(&agg, &ctx);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted())
      << capped.status().ToString();
  EXPECT_EQ(ctx.memory()->current_bytes(), 0u);

  ctx.PrepareRerun(0);
  auto retried = CollectAll(&agg, &ctx);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().num_rows, 8192u);
}

// Regression: schema() after Close. An empty input leaves the aggregate
// with zero groups, so CollectAll's typed-empty path reads op->schema()
// *after* op->Close() cleared the partials; before the schema was cached
// at Open this dereferenced a cleared vector.
TEST(ReopenTest, ParallelHashAggSchemaSurvivesClose) {
  common::TaskScheduler scheduler(2);
  auto factory = [](size_t, size_t) -> Result<OperatorPtr> {
    return OperatorPtr(
        std::make_unique<VectorSource>(S(), std::vector<Batch>{}));
  };
  ParallelHashAgg agg(factory, /*num_clones=*/2, {"k"},
                      {AggSum(Col("v"), "s")}, &scheduler);
  ExecContext ctx(nullptr);
  auto result = CollectAll(&agg, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows, 0u);
  ASSERT_EQ(result.value().columns.size(), 2u);  // k, s — typed empty
  EXPECT_EQ(result.value().columns[0].type, TypeId::kInt32);
  EXPECT_EQ(result.value().columns[1].type, TypeId::kFloat64);
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
