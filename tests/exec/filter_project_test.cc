#include "exec/filter.h"
#include "exec/project.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace exec {
namespace {

class VectorSource : public Operator {
 public:
  VectorSource(Schema schema, std::vector<Batch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext*) override {
    at_ = 0;
    return Status::OK();
  }
  Result<Batch> Next(ExecContext*) override {
    if (at_ >= batches_.size()) return Batch::Empty();
    Batch out;
    const Batch& src = batches_[at_++];
    out.num_rows = src.num_rows;
    out.group_id = src.group_id;
    out.columns = src.columns;
    return out;
  }

 private:
  Schema schema_;
  std::vector<Batch> batches_;
  size_t at_ = 0;
};

Schema S() {
  return Schema({{"a", TypeId::kInt32}, {"b", TypeId::kFloat64}});
}

Batch B(std::vector<int32_t> a, std::vector<double> b, int64_t gid = -1) {
  Batch out;
  ColumnVector ca(TypeId::kInt32), cb(TypeId::kFloat64);
  ca.i32 = std::move(a);
  cb.f64 = std::move(b);
  out.num_rows = ca.i32.size();
  out.columns = {std::move(ca), std::move(cb)};
  out.group_id = gid;
  return out;
}

TEST(FilterTest, DropsNonMatchingRowsAndEmptyBatches) {
  ExecContext ctx(nullptr);
  Filter filter(std::make_unique<VectorSource>(
                    S(), std::vector<Batch>{B({1, 2, 3}, {1, 2, 3}),
                                            B({0, 0}, {0, 0}),  // all filtered
                                            B({9}, {9})}),
                Gt(Col("a"), LitI64(0)));
  Batch out = CollectAll(&filter, &ctx).ValueOrDie();
  EXPECT_EQ(out.num_rows, 4u);
}

TEST(FilterTest, PreservesGroupTags) {
  ExecContext ctx(nullptr);
  Filter filter(std::make_unique<VectorSource>(
                    S(), std::vector<Batch>{B({1, 2}, {1, 2}, 5)}),
                Gt(Col("a"), LitI64(1)));
  ASSERT_TRUE(filter.Open(&ctx).ok());
  Batch b = filter.Next(&ctx).ValueOrDie();
  EXPECT_EQ(b.group_id, 5);
  EXPECT_EQ(b.num_rows, 1u);
}

TEST(FilterTest, UnboundColumnFailsOpen) {
  ExecContext ctx(nullptr);
  Filter filter(std::make_unique<VectorSource>(S(), std::vector<Batch>{}),
                Gt(Col("zz"), LitI64(0)));
  EXPECT_FALSE(filter.Open(&ctx).ok());
}

TEST(ProjectTest, ComputesAndRenames) {
  ExecContext ctx(nullptr);
  Project project(std::make_unique<VectorSource>(
                      S(), std::vector<Batch>{B({1, 2}, {0.5, 1.5})}),
                  {{"sum", Add(Col("a"), Col("b"))},
                   {"a_renamed", Col("a")}});
  ASSERT_TRUE(project.Open(&ctx).ok());
  EXPECT_EQ(project.schema().IndexOf("sum"), 0);
  EXPECT_EQ(project.schema().IndexOf("a_renamed"), 1);
  Batch out = CollectAll(&project, &ctx).ValueOrDie();
  EXPECT_DOUBLE_EQ(out.columns[0].f64[1], 3.5);
  EXPECT_EQ(out.columns[1].i32[0], 1);
}

TEST(ProjectTest, RenameAndKeepHelpers) {
  ExecContext ctx(nullptr);
  OperatorPtr renamed = Project::Rename(
      std::make_unique<VectorSource>(S(),
                                     std::vector<Batch>{B({7}, {0.0})}),
      {{"a", "x"}});
  ASSERT_TRUE(renamed->Open(&ctx).ok());
  EXPECT_EQ(renamed->schema().num_fields(), 1u);
  EXPECT_EQ(renamed->schema().field(0).name, "x");

  OperatorPtr kept = Project::Keep(
      std::make_unique<VectorSource>(S(),
                                     std::vector<Batch>{B({7}, {0.0})}),
      {"b"});
  ASSERT_TRUE(kept->Open(&ctx).ok());
  EXPECT_EQ(kept->schema().num_fields(), 1u);
  EXPECT_EQ(kept->schema().field(0).type, TypeId::kFloat64);
}

TEST(SchemaTest, ConcatAndLookup) {
  Schema a({{"x", TypeId::kInt32}});
  Schema b({{"y", TypeId::kString}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_fields(), 2u);
  EXPECT_EQ(c.IndexOf("y"), 1);
  EXPECT_EQ(c.IndexOf("zz"), -1);
  EXPECT_FALSE(c.Require("zz").ok());
  EXPECT_EQ(c.ToString(), "[x, y]");
}

}  // namespace
}  // namespace exec
}  // namespace bdcc
