// Shared test helpers: canonical batch comparison across physical schemes.
#ifndef BDCC_TESTS_TEST_UTIL_H_
#define BDCC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace testutil {

// One result row: a sort key built from the non-float columns plus the raw
// float values for tolerant comparison.
struct CanonRow {
  std::string key;
  std::vector<double> floats;
};

inline std::vector<CanonRow> Canonicalize(const exec::Batch& batch) {
  std::vector<CanonRow> rows(batch.num_rows);
  for (size_t r = 0; r < batch.num_rows; ++r) {
    CanonRow& row = rows[r];
    for (const exec::ColumnVector& c : batch.columns) {
      if (c.type == TypeId::kFloat64) {
        row.floats.push_back(c.IsNull(r) ? -1e300 : c.f64_data()[r]);
        continue;
      }
      if (c.IsNull(r)) {
        row.key += "|<null>";
        continue;
      }
      row.key += "|" + c.GetValue(r).ToString();
    }
  }
  std::sort(rows.begin(), rows.end(), [](const CanonRow& a, const CanonRow& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.floats < b.floats;
  });
  return rows;
}

// EXPECT rows of `a` and `b` to be the same multiset, with relative
// tolerance on float columns.
inline void ExpectBatchesEqual(const exec::Batch& a, const exec::Batch& b,
                               const std::string& label,
                               double rel_tol = 1e-6) {
  ASSERT_EQ(a.num_rows, b.num_rows) << label << ": row count differs";
  ASSERT_EQ(a.columns.size(), b.columns.size()) << label;
  std::vector<CanonRow> ra = Canonicalize(a);
  std::vector<CanonRow> rb = Canonicalize(b);
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].key, rb[i].key) << label << ": row " << i << " differs";
    ASSERT_EQ(ra[i].floats.size(), rb[i].floats.size()) << label;
    for (size_t f = 0; f < ra[i].floats.size(); ++f) {
      double x = ra[i].floats[f], y = rb[i].floats[f];
      double tol = rel_tol * std::max({1.0, std::fabs(x), std::fabs(y)});
      EXPECT_NEAR(x, y, tol)
          << label << ": row " << i << " (key " << ra[i].key
          << ") float column " << f;
    }
  }
}

}  // namespace testutil
}  // namespace bdcc

#endif  // BDCC_TESTS_TEST_UTIL_H_
