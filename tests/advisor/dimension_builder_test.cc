// Dimension creation over the union of usage sites (tech report [4]):
// frequencies are gathered across every using table joined over its path.
#include "advisor/dimension_builder.h"

#include "catalog/catalog.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace advisor {
namespace {

class DimensionBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.AddTable({"D", {{"k", TypeId::kInt32}}, {"k"}}).AbortIfNotOK();
    catalog_
        .AddTable({"F1", {{"fk", TypeId::kInt32}}, {}})
        .AbortIfNotOK();
    catalog_
        .AddTable({"F2", {{"fk2", TypeId::kInt32}}, {}})
        .AbortIfNotOK();
    catalog_.AddForeignKey({"FK_F1_D", "F1", {"fk"}, "D", {"k"}})
        .AbortIfNotOK();
    catalog_.AddForeignKey({"FK_F2_D", "F2", {"fk2"}, "D", {"k"}})
        .AbortIfNotOK();

    // Host: 100 distinct keys.
    Table host("D");
    Column k(TypeId::kInt32);
    for (int i = 0; i < 100; ++i) k.AppendInt32(i);
    host.AddColumn("k", std::move(k)).AbortIfNotOK();
    tables_.emplace("D", std::move(host));

    // F1 references keys 0..9 heavily; F2 references 90..99 heavily.
    Table f1("F1");
    Column fk(TypeId::kInt32);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
      fk.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 9)));
    }
    f1.AddColumn("fk", std::move(fk)).AbortIfNotOK();
    tables_.emplace("F1", std::move(f1));

    Table f2("F2");
    Column fk2(TypeId::kInt32);
    for (int i = 0; i < 5000; ++i) {
      fk2.AppendInt32(static_cast<int32_t>(rng.Uniform(90, 99)));
    }
    f2.AddColumn("fk2", std::move(fk2)).AbortIfNotOK();
    tables_.emplace("F2", std::move(f2));
  }

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* t,
             const catalog::Catalog* c)
        : t_(t), c_(c) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = t_->find(name);
      if (it == t_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return c_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* t_;
    const catalog::Catalog* c_;
  };

  catalog::Catalog catalog_;
  std::map<std::string, Table> tables_;
};

TEST_F(DimensionBuilderTest, UnionWeightedBinning) {
  // With a 3-bit cap, equal-frequency binning over the union must dedicate
  // most bins to the hot ranges [0,9] and [90,99] (each carries ~half the
  // mass) instead of splitting the key domain uniformly.
  Resolver resolver(&tables_, &catalog_);
  binning::BinningOptions options;
  options.max_bits = 3;
  auto dim = BuildDimensionFromUsages(
                 "D_K", "D", {"k"},
                 {UsageRef{"F1", DimensionPath{{"FK_F1_D"}}},
                  UsageRef{"F2", DimensionPath{{"FK_F2_D"}}}},
                 resolver, options)
                 .ValueOrDie();
  EXPECT_EQ(dim->bits(), 3);
  EXPECT_EQ(dim->num_bins(), 8u);
  // The hot low range spans several bins; the cold middle collapses.
  uint64_t bin_of_0 = dim->BinOfInt(0);
  uint64_t bin_of_9 = dim->BinOfInt(9);
  uint64_t bin_of_50 = dim->BinOfInt(50);
  uint64_t bin_of_89 = dim->BinOfInt(89);
  EXPECT_GT(bin_of_9 - bin_of_0, 1u) << "hot range should span bins";
  EXPECT_EQ(dim->OrdinalOfBinNumber(dim->BinOfInt(89)),
            dim->OrdinalOfBinNumber(bin_of_50))
      << "cold range 10..89 should share a bin";
  (void)bin_of_89;
}

TEST_F(DimensionBuilderTest, UnreferencedKeysStillGetBins) {
  Resolver resolver(&tables_, &catalog_);
  binning::BinningOptions options;
  options.max_bits = 13;  // plenty: unique bins
  auto dim = BuildDimensionFromUsages(
                 "D_K", "D", {"k"},
                 {UsageRef{"F1", DimensionPath{{"FK_F1_D"}}}}, resolver,
                 options)
                 .ValueOrDie();
  // All 100 host keys binned even though F1 touches only 0..9.
  EXPECT_EQ(dim->num_bins(), 100u);
}

TEST_F(DimensionBuilderTest, HostOnlyUsage) {
  Resolver resolver(&tables_, &catalog_);
  auto dim = BuildDimensionFromUsages("D_K", "D", {"k"},
                                      {UsageRef{"D", DimensionPath{}}},
                                      resolver, {})
                 .ValueOrDie();
  EXPECT_EQ(dim->table(), "D");
  EXPECT_EQ(dim->num_bins(), 100u);
}

TEST_F(DimensionBuilderTest, EmptyHostRejected) {
  Table empty("E");
  Column c(TypeId::kInt32);
  empty.AddColumn("k", std::move(c)).AbortIfNotOK();
  tables_.emplace("E", std::move(empty));
  catalog_.AddTable({"E", {{"k", TypeId::kInt32}}, {"k"}}).AbortIfNotOK();
  Resolver resolver(&tables_, &catalog_);
  EXPECT_FALSE(BuildDimensionFromUsages("D_E", "E", {"k"},
                                        {UsageRef{"E", DimensionPath{}}},
                                        resolver, {})
                   .ok());
}

}  // namespace
}  // namespace advisor
}  // namespace bdcc
