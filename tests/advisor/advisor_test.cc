// Algorithm 2 on the TPC-H catalog: dimension identification, use
// inheritance over FKs, and the published design tables.
#include "advisor/advisor.h"

#include "advisor/report.h"
#include "gtest/gtest.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_schema.h"

namespace bdcc {
namespace advisor {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new catalog::Catalog(
        tpch::MakeTpchCatalog(true).ValueOrDie());
    tpch::DbgenOptions gen;
    gen.scale_factor = 0.01;
    tables_ = new std::map<std::string, Table>(
        tpch::GenerateTpch(gen).ValueOrDie());
    resolver_ = new Resolver(tables_, catalog_);
    design_ = new SchemaDesign(
        DesignSchema(*catalog_, *resolver_, {}).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete design_;
    delete resolver_;
    delete tables_;
    delete catalog_;
  }

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* t,
             const catalog::Catalog* c)
        : t_(t), c_(c) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = t_->find(name);
      if (it == t_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return c_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* t_;
    const catalog::Catalog* c_;
  };

  static catalog::Catalog* catalog_;
  static std::map<std::string, Table>* tables_;
  static Resolver* resolver_;
  static SchemaDesign* design_;
};

catalog::Catalog* AdvisorTest::catalog_ = nullptr;
std::map<std::string, Table>* AdvisorTest::tables_ = nullptr;
AdvisorTest::Resolver* AdvisorTest::resolver_ = nullptr;
SchemaDesign* AdvisorTest::design_ = nullptr;

TEST_F(AdvisorTest, IdentifiesThreeDimensions) {
  ASSERT_EQ(design_->dimensions.size(), 3u);
  DimensionPtr nation = design_->FindDimension("D_NATION");
  ASSERT_NE(nation, nullptr);
  EXPECT_EQ(nation->table(), "NATION");
  EXPECT_EQ(nation->key_columns(),
            (std::vector<std::string>{"n_regionkey", "n_nationkey"}));
  // Paper: 25 nations -> 5 bits.
  EXPECT_EQ(nation->bits(), 5);

  DimensionPtr date = design_->FindDimension("D_DATE");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->table(), "ORDERS");
  // Paper: 13 bits (2406 distinct days + headroom for the growing domain).
  EXPECT_EQ(date->bits(), 13);

  DimensionPtr part = design_->FindDimension("D_PART");
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->table(), "PART");
}

TEST_F(AdvisorTest, TableUsesMatchPaper) {
  // REGION gets no uses; the other seven tables are clustered.
  EXPECT_EQ(design_->FindTable("REGION"), nullptr);
  ASSERT_EQ(design_->tables.size(), 7u);

  auto paths = [&](const char* table) {
    std::vector<std::string> out;
    for (const DimensionUse& u : design_->FindTable(table)->uses) {
      out.push_back(u.dimension->name() + ":" + u.path.ToString());
    }
    return out;
  };
  EXPECT_EQ(paths("NATION"), (std::vector<std::string>{"D_NATION:-"}));
  EXPECT_EQ(paths("SUPPLIER"),
            (std::vector<std::string>{"D_NATION:FK_S_N"}));
  EXPECT_EQ(paths("CUSTOMER"),
            (std::vector<std::string>{"D_NATION:FK_C_N"}));
  EXPECT_EQ(paths("PART"), (std::vector<std::string>{"D_PART:-"}));
  EXPECT_EQ(paths("PARTSUPP"),
            (std::vector<std::string>{"D_PART:FK_PS_P",
                                      "D_NATION:FK_PS_S.FK_S_N"}));
  EXPECT_EQ(paths("ORDERS"),
            (std::vector<std::string>{"D_DATE:-",
                                      "D_NATION:FK_O_C.FK_C_N"}));
  // LINEITEM clustered on everything; D_NATION twice over distinct paths
  // (the paper's "logically different dimensions").
  EXPECT_EQ(paths("LINEITEM"),
            (std::vector<std::string>{
                "D_DATE:FK_L_O", "D_NATION:FK_L_O.FK_O_C.FK_C_N",
                "D_NATION:FK_L_S.FK_S_N", "D_PART:FK_L_P"}));
}

TEST_F(AdvisorTest, DimensionNameFromHint) {
  EXPECT_EQ(DimensionNameFromHint({"date_idx", "ORDERS", {"o_orderdate"}}),
            "D_DATE");
  EXPECT_EQ(DimensionNameFromHint({"nation_idx", "NATION", {}}), "D_NATION");
  EXPECT_EQ(DimensionNameFromHint({"foo_index", "T", {}}), "D_FOO");
  EXPECT_EQ(DimensionNameFromHint({"plain", "T", {}}), "D_PLAIN");
}

TEST_F(AdvisorTest, NoHintsMeansNoDesign) {
  catalog::Catalog bare = tpch::MakeTpchCatalog(false).ValueOrDie();
  Resolver resolver(tables_, &bare);
  SchemaDesign design = DesignSchema(bare, resolver, {}).ValueOrDie();
  EXPECT_TRUE(design.dimensions.empty());
  EXPECT_TRUE(design.tables.empty());
}

TEST_F(AdvisorTest, ReportRendersPaperTables) {
  std::string dims = RenderDimensionTable(*design_);
  EXPECT_NE(dims.find("D_NATION"), std::string::npos);
  EXPECT_NE(dims.find("n_regionkey,n_nationkey"), std::string::npos);
  std::string uses =
      RenderDimensionUseTable(*design_, interleave::Policy::kRoundRobinPerUse);
  // ORDERS' mask strings straight from the paper.
  EXPECT_NE(uses.find("101010101011111111"), std::string::npos);
  EXPECT_NE(uses.find("10101010100000000"), std::string::npos);
}

TEST_F(AdvisorTest, PaperMaskTrimsLeadingZeros) {
  EXPECT_EQ(PaperMask(0b00101, 5), "101");
  EXPECT_EQ(PaperMask(0b10101, 5), "10101");
  EXPECT_EQ(PaperMask(0, 5), "0");
}

TEST_F(AdvisorTest, BuildDesignedTablesEndToEnd) {
  std::map<std::string, Table> sources;
  for (const auto& [name, table] : *tables_) {
    sources.emplace(name, table.Clone());
  }
  auto built =
      BuildDesignedTables(*design_, std::move(sources), *resolver_, {})
          .ValueOrDie();
  EXPECT_EQ(built.size(), 7u);
  const BdccTable& li = built.at("LINEITEM");
  EXPECT_EQ(li.uses().size(), 4u);
  // Full granularity = sum of dimension bits.
  int expect_bits = 0;
  for (const DimensionUse& u : li.uses()) {
    expect_bits += u.dimension->bits();
  }
  EXPECT_EQ(li.full_bits(), expect_bits);
  EXPECT_LE(li.count_bits(), li.full_bits());
  EXPECT_EQ(li.logical_rows(), tables_->at("LINEITEM").num_rows());
}

}  // namespace
}  // namespace advisor
}  // namespace bdcc
