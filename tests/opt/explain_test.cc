#include "opt/explain.h"

#include "gtest/gtest.h"

namespace bdcc {
namespace opt {
namespace {

using exec::Col;
using exec::JoinType;

TEST(ExplainTest, RendersQ3Shape) {
  NodePtr li = LScan("LINEITEM", {"l_orderkey", "l_shipdate"},
                     {SargRange("l_shipdate",
                                Value::Date(ParseDate("1995-03-16")),
                                std::nullopt)});
  NodePtr orders = LScan("ORDERS", {"o_orderkey", "o_custkey"});
  NodePtr j = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  NodePtr agg = LAgg(j, {"l_orderkey"},
                     {exec::AggSum(Col("l_orderkey"), "revenue")});
  NodePtr plan = LSort(agg, {exec::SortKey{"revenue", true}}, 10);

  std::string text = ExplainPlan(plan);
  EXPECT_NE(text.find("Sort [revenue desc] limit 10"), std::string::npos);
  EXPECT_NE(text.find("Aggregate group=[l_orderkey] aggs=[revenue]"),
            std::string::npos);
  EXPECT_NE(text.find("Join inner on (l_orderkey)=(o_orderkey) fk=FK_L_O"),
            std::string::npos);
  EXPECT_NE(text.find("Scan LINEITEM cols=2 sargs=[l_shipdate]"),
            std::string::npos);
  // Children are indented under parents.
  size_t sort_at = text.find("Sort");
  size_t scan_at = text.find("    ");
  EXPECT_LT(sort_at, scan_at);
}

TEST(ExplainTest, RendersFilterProjectLimit) {
  NodePtr plan = LLimit(
      LProject(LFilter(LScan("NATION", {"n_name"}),
                       exec::Eq(Col("n_name"), exec::LitStr("PERU"))),
               {{"name", Col("n_name")}}),
      5);
  std::string text = ExplainPlan(plan);
  EXPECT_NE(text.find("Limit 5"), std::string::npos);
  EXPECT_NE(text.find("Project [name]"), std::string::npos);
  EXPECT_NE(text.find("Filter n_name='PERU'"), std::string::npos);
  EXPECT_NE(text.find("Scan NATION cols=1"), std::string::npos);
}

}  // namespace
}  // namespace opt
}  // namespace bdcc
