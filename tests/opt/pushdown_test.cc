// Unit tests for the dimension-restriction analysis (pushdown/propagation):
// sarg-derived bin ranges, the snowflake (REGION->D_NATION) rule, exact
// path matching, and self-join disambiguation.
#include "opt/pushdown.h"

#include "gtest/gtest.h"
#include "opt/logical_plan.h"
#include "tpch/tpch_db.h"

namespace bdcc {
namespace opt {
namespace {

using exec::Col;
using exec::JoinType;

class PushdownTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchDbOptions options;
    options.scale_factor = 0.004;
    options.seed = 5;
    options.build_plain = false;
    options.build_pk = false;
    options.advisor.build.tuning.efficient_access_bytes = 1024;
    db_ = tpch::TpchDb::Create(options).ValueOrDie().release();
  }
  static void TearDownTestSuite() { delete db_; }

  static std::vector<UseRestriction> Analyze(const NodePtr& plan) {
    return AnalyzePushdown(plan, db_->bdcc()).ValueOrDie().restrictions;
  }

  static int CountFor(const std::vector<UseRestriction>& rs,
                      const std::string& table) {
    int n = 0;
    for (const UseRestriction& r : rs) {
      if (r.scan->scan.table == table) ++n;
    }
    return n;
  }

  static tpch::TpchDb* db_;
};

tpch::TpchDb* PushdownTest::db_ = nullptr;

TEST_F(PushdownTest, LocalSargRestrictsOwnScan) {
  NodePtr orders = LScan(
      "ORDERS", {"o_orderkey", "o_orderdate"},
      {SargRange("o_orderdate", Value::Date(ParseDate("1997-01-01")),
                 std::nullopt)});
  auto rs = Analyze(orders);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].scan->scan.table, "ORDERS");
  EXPECT_GT(rs[0].lo_bin, 0u);  // late dates -> high bins
  EXPECT_NE(rs[0].source.find("o_orderdate"), std::string::npos);
}

TEST_F(PushdownTest, RestrictionFollowsExactFkChain) {
  NodePtr orders = LScan(
      "ORDERS", {"o_orderkey", "o_orderdate"},
      {SargRange("o_orderdate", Value::Date(ParseDate("1997-01-01")),
                 std::nullopt)});
  NodePtr li = LScan("LINEITEM", {"l_orderkey"});
  NodePtr j = LJoin(li, orders, JoinType::kInner, {"l_orderkey"},
                    {"o_orderkey"}, "FK_L_O");
  auto rs = Analyze(j);
  EXPECT_EQ(CountFor(rs, "ORDERS"), 1);
  EXPECT_EQ(CountFor(rs, "LINEITEM"), 1);
  // Without the FK annotation there is no edge -> no propagation.
  NodePtr li2 = LScan("LINEITEM", {"l_orderkey"});
  NodePtr orders2 = LScan(
      "ORDERS", {"o_orderkey", "o_orderdate"},
      {SargRange("o_orderdate", Value::Date(ParseDate("1997-01-01")),
                 std::nullopt)});
  NodePtr j2 = LJoin(li2, orders2, JoinType::kInner, {"l_orderkey"},
                     {"o_orderkey"}, "");
  auto rs2 = Analyze(j2);
  EXPECT_EQ(CountFor(rs2, "LINEITEM"), 0);
  EXPECT_EQ(CountFor(rs2, "ORDERS"), 1);  // local pushdown still applies
}

TEST_F(PushdownTest, NationResidualResolvedAtPlanTime) {
  // n_name is not a dimension key column; the restriction comes from
  // plan-time evaluation of the (small) host table.
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_name"},
                         {SargEq("n_name", Value::String("GERMANY"))});
  NodePtr supp = LScan("SUPPLIER", {"s_suppkey", "s_nationkey"});
  NodePtr j = LJoin(supp, nation, JoinType::kInner, {"s_nationkey"},
                    {"n_nationkey"}, "FK_S_N");
  auto rs = Analyze(j);
  ASSERT_EQ(CountFor(rs, "SUPPLIER"), 1);
  // A single nation maps to a single bin.
  for (const UseRestriction& r : rs) {
    if (r.scan->scan.table == "SUPPLIER") {
      EXPECT_EQ(r.lo_bin, r.hi_bin);
    }
  }
}

TEST_F(PushdownTest, RegionSnowflakeRule) {
  // The paper's example: a region equi-selection determines a consecutive
  // D_NATION bin range, one FK hop below the dimension host.
  NodePtr region = LScan("REGION", {"r_regionkey", "r_name"},
                         {SargEq("r_name", Value::String("ASIA"))});
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_regionkey"});
  NodePtr cust = LScan("CUSTOMER", {"c_custkey", "c_nationkey"});
  NodePtr j = LJoin(nation, region, JoinType::kInner, {"n_regionkey"},
                    {"r_regionkey"}, "FK_N_R");
  j = LJoin(cust, j, JoinType::kInner, {"c_nationkey"}, {"n_nationkey"},
            "FK_C_N");
  auto rs = Analyze(j);
  ASSERT_GE(CountFor(rs, "CUSTOMER"), 1);
  for (const UseRestriction& r : rs) {
    if (r.scan->scan.table == "CUSTOMER") {
      EXPECT_LT(r.lo_bin, r.hi_bin);  // a range of nations, not one
      EXPECT_NE(r.source.find("REGION"), std::string::npos);
    }
  }
}

TEST_F(PushdownTest, SelfJoinScansRestrictedIndependently) {
  // Q21 shape: one LINEITEM instance joins the SAUDI-filtered supplier
  // chain; a second instance (for the aggregate) must stay unrestricted.
  NodePtr l1 = LScan("LINEITEM", {"l_orderkey", "l_suppkey"});
  NodePtr supp = LScan("SUPPLIER", {"s_suppkey", "s_nationkey"});
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_name"},
                         {SargEq("n_name", Value::String("CANADA"))});
  NodePtr chain = LJoin(l1, supp, JoinType::kInner, {"l_suppkey"},
                        {"s_suppkey"}, "FK_L_S");
  chain = LJoin(chain, nation, JoinType::kInner, {"s_nationkey"},
                {"n_nationkey"}, "FK_S_N");
  NodePtr l2 = LScan("LINEITEM", {"l_orderkey", "l_suppkey"});
  NodePtr all = LJoin(chain, l2, JoinType::kInner, {"l_orderkey"},
                      {"l_orderkey"}, "");
  auto rs = Analyze(all);
  const LogicalNode* restricted = nullptr;
  int lineitem_restrictions = 0;
  for (const UseRestriction& r : rs) {
    if (r.scan->scan.table == "LINEITEM") {
      ++lineitem_restrictions;
      restricted = r.scan;
    }
  }
  EXPECT_EQ(lineitem_restrictions, 1);
  EXPECT_EQ(restricted, l1.get());
}

TEST_F(PushdownTest, UnselectiveFilterYieldsNoRestriction) {
  // A filter keeping every row must not produce a (useless) restriction.
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_name"}, {},
                         exec::Ne(Col("n_name"), exec::LitStr("ATLANTIS")));
  NodePtr supp = LScan("SUPPLIER", {"s_suppkey", "s_nationkey"});
  NodePtr j = LJoin(supp, nation, JoinType::kInner, {"s_nationkey"},
                    {"n_nationkey"}, "FK_S_N");
  auto rs = Analyze(j);
  EXPECT_EQ(CountFor(rs, "SUPPLIER"), 0);
}

TEST_F(PushdownTest, NonBdccSchemeProducesNothing) {
  tpch::TpchDbOptions options;
  options.scale_factor = 0.002;
  options.build_bdcc = false;
  options.build_pk = false;
  auto plain_db = tpch::TpchDb::Create(options).ValueOrDie();
  NodePtr orders = LScan(
      "ORDERS", {"o_orderkey", "o_orderdate"},
      {SargRange("o_orderdate", Value::Date(ParseDate("1997-01-01")),
                 std::nullopt)});
  auto analysis = AnalyzePushdown(orders, plain_db->plain()).ValueOrDie();
  EXPECT_TRUE(analysis.restrictions.empty());
  EXPECT_EQ(analysis.scans.size(), 1u);
}

}  // namespace
}  // namespace opt
}  // namespace bdcc
