// Planner strategy selection per scheme, pushdown analysis, and the
// ablation property: every combination of planner features returns the
// same results.
#include "opt/planner.h"

#include "gtest/gtest.h"
#include "opt/pushdown.h"
#include "tests/test_util.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace opt {
namespace {

using exec::Col;
using exec::JoinType;

class PlannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 11;
    // Small AR so even the tiny test tables keep count-table granularity
    // (strategy selection needs shared dimension bits to exist).
    options.advisor.build.tuning.efficient_access_bytes = 1024;
    db_ = tpch::TpchDb::Create(options).ValueOrDie().release();
  }
  static void TearDownTestSuite() { delete db_; }

  static std::vector<std::string> NotesFor(int q, const PhysicalDb& db,
                                           PlannerOptions opts = {}) {
    std::vector<std::string> notes;
    exec::ExecContext ec(nullptr);
    tpch::QueryContext ctx;
    ctx.db = &db;
    ctx.exec = &ec;
    ctx.notes = &notes;
    ctx.scale_factor = 0.005;
    ctx.planner = opts;
    auto result = tpch::RunTpchQuery(q, ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return notes;
  }

  static bool HasNote(const std::vector<std::string>& notes,
                      const std::string& needle) {
    for (const std::string& n : notes) {
      if (n.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  static tpch::TpchDb* db_;
};

tpch::TpchDb* PlannerTest::db_ = nullptr;

TEST_F(PlannerTest, PkSchemeUsesMergeJoins) {
  // Q12: LINEITEM⋈ORDERS on the sorted, unique orderkey -> merge join.
  auto notes = NotesFor(12, db_->pk());
  EXPECT_TRUE(HasNote(notes, "merge join LINEITEM⋈ORDERS"));
  // Q18's inner aggregate streams over the sorted orderkey.
  notes = NotesFor(18, db_->pk());
  EXPECT_TRUE(HasNote(notes, "streaming aggregation on l_orderkey"));
}

TEST_F(PlannerTest, PlainSchemeUsesNoSpecialStrategies) {
  for (int q : {3, 12, 18}) {
    auto notes = NotesFor(q, db_->plain());
    EXPECT_FALSE(HasNote(notes, "merge join")) << "Q" << q;
    EXPECT_FALSE(HasNote(notes, "sandwich")) << "Q" << q;
  }
}

TEST_F(PlannerTest, BdccSchemeSandwichesCoClusteredJoins) {
  auto notes = NotesFor(3, db_->bdcc());
  EXPECT_TRUE(HasNote(notes, "sandwich join LINEITEM⋈ORDERS"));
  EXPECT_TRUE(HasNote(notes, "cascade"));  // ⋈CUSTOMER via retag
  // Q13's LOJ sandwiches and its per-customer agg sandwiches (the paper's
  // "c_custkey implies the nation" case).
  notes = NotesFor(13, db_->bdcc());
  EXPECT_TRUE(HasNote(notes, "sandwich join CUSTOMER⋈ORDERS"));
  EXPECT_TRUE(HasNote(notes, "sandwich aggregation"));
}

TEST_F(PlannerTest, BdccSchemePushdownPropagation) {
  // Q3: date selection on ORDERS prunes ORDERS and LINEITEM.
  auto notes = NotesFor(3, db_->bdcc());
  EXPECT_TRUE(HasNote(notes, "pushdown: ORDERS groups via D_DATE"));
  EXPECT_TRUE(HasNote(notes, "pushdown: LINEITEM groups via D_DATE"));
  // Q5: the ASIA region selection reaches SUPPLIER and LINEITEM through
  // the nation dimension (the paper's rewriter example).
  notes = NotesFor(5, db_->bdcc());
  EXPECT_TRUE(HasNote(notes, "pushdown: SUPPLIER groups via D_NATION"));
  EXPECT_TRUE(HasNote(notes, "pushdown: LINEITEM groups via D_NATION"));
}

TEST_F(PlannerTest, ParallelPartitionedBuildPlannedAndToggleable) {
  // Plain scheme, threads=4: the probe parallelizes and — because the
  // build side is itself a clonable scan chain of useful size — the build
  // goes partitioned. (Q12 under plain: probe LINEITEM, build ORDERS.)
  PlannerOptions par;
  par.num_threads = 4;
  auto notes = NotesFor(12, db_->plain(), par);
  EXPECT_TRUE(HasNote(notes, "parallel hash join probe x4"));
  EXPECT_TRUE(HasNote(notes, "parallel partitioned hash join build x4"));

  PlannerOptions no_par_build = par;
  no_par_build.enable_parallel_build = false;
  notes = NotesFor(12, db_->plain(), no_par_build);
  EXPECT_TRUE(HasNote(notes, "parallel hash join probe x4"));
  EXPECT_FALSE(HasNote(notes, "parallel partitioned hash join build"));
}

TEST_F(PlannerTest, FeatureTogglesDisableStrategies) {
  PlannerOptions no_sandwich;
  no_sandwich.enable_sandwich = false;
  EXPECT_FALSE(HasNote(NotesFor(3, db_->bdcc(), no_sandwich), "sandwich"));
  PlannerOptions no_pruning;
  no_pruning.enable_group_pruning = false;
  EXPECT_FALSE(HasNote(NotesFor(3, db_->bdcc(), no_pruning), "pushdown"));
  PlannerOptions no_merge;
  no_merge.enable_merge_join = false;
  EXPECT_FALSE(HasNote(NotesFor(12, db_->pk(), no_merge), "merge join"));
}

// Ablation property: any combination of planner features must return the
// same result set for every query (features are pure optimizations).
class PlannerAblationTest : public PlannerTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(PlannerAblationTest, FeaturesPreserveResults) {
  int q = GetParam();
  exec::Batch reference;
  {
    exec::ExecContext ec(nullptr);
    tpch::QueryContext ctx;
    ctx.db = &db_->plain();
    ctx.exec = &ec;
    ctx.scale_factor = 0.005;
    reference = tpch::RunTpchQuery(q, ctx).ValueOrDie();
  }
  for (int mask = 0; mask < 8; ++mask) {
    PlannerOptions opts;
    opts.enable_sandwich = mask & 1;
    opts.enable_group_pruning = mask & 2;
    opts.enable_zonemaps = mask & 4;
    exec::ExecContext ec(nullptr);
    tpch::QueryContext ctx;
    ctx.db = &db_->bdcc();
    ctx.exec = &ec;
    ctx.scale_factor = 0.005;
    ctx.planner = opts;
    auto result = tpch::RunTpchQuery(q, ctx);
    ASSERT_TRUE(result.ok())
        << "Q" << q << " mask " << mask << ": "
        << result.status().ToString();
    testutil::ExpectBatchesEqual(
        reference, result.value(),
        "Q" + std::to_string(q) + " feature-mask " + std::to_string(mask));
  }
}

// The queries exercising the interesting feature interactions.
INSTANTIATE_TEST_SUITE_P(KeyQueries, PlannerAblationTest,
                         ::testing::Values(3, 4, 5, 10, 13, 18, 21));

TEST_F(PlannerTest, PushdownAnalysisRespectsAntiJoinBoundaries) {
  // A restriction must not propagate across an anti join's boundary.
  NodePtr cust = LScan("CUSTOMER", {"c_custkey", "c_nationkey"});
  NodePtr nation = LScan("NATION", {"n_nationkey", "n_name"},
                         {SargEq("n_name", Value::String("GERMANY"))});
  NodePtr j1 = LJoin(cust, nation, JoinType::kInner, {"c_nationkey"},
                     {"n_nationkey"}, "FK_C_N");
  NodePtr orders = LScan("ORDERS", {"o_orderkey", "o_custkey"});
  NodePtr anti = LJoin(j1, orders, JoinType::kLeftAnti, {"c_custkey"},
                       {"o_custkey"}, "FK_O_C");
  auto analysis = AnalyzePushdown(anti, db_->bdcc()).ValueOrDie();
  bool orders_restricted = false;
  for (const UseRestriction& r : analysis.restrictions) {
    if (r.scan->scan.table == "ORDERS") orders_restricted = true;
  }
  EXPECT_FALSE(orders_restricted);
  // ...but CUSTOMER (inner-joined with NATION) is restricted.
  bool customer_restricted = false;
  for (const UseRestriction& r : analysis.restrictions) {
    if (r.scan->scan.table == "CUSTOMER") customer_restricted = true;
  }
  EXPECT_TRUE(customer_restricted);
}

}  // namespace
}  // namespace opt
}  // namespace bdcc
