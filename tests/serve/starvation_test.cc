// Priority starvation: interactive work must not queue behind a batch
// backlog. The deterministic tests use a zero-worker scheduler where every
// dispatch happens inside Wait in a fixed order, asserting the structural
// property (the high lane drains before any backlogged normal task, and
// without priority the same submission waits behind the whole backlog).
// The threaded test then bounds the observed interactive queue wait under
// a real batch flood on a 2-worker scheduler.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace common {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Structural form of the starvation bound: with a batch backlog already
// queued, an interactive (kHigh) task submitted afterwards runs with ZERO
// batch tasks dispatched between its submission and its execution.
TEST(ServeStarvationTest, InteractiveSkipsBatchBacklogDeterministic) {
  TaskScheduler scheduler(0);
  int batch_dispatched = 0;
  int batch_seen_by_interactive = -1;

  TaskScheduler::TaskGroup batch(&scheduler);
  for (int i = 0; i < 50; ++i) {
    batch.Submit([&batch_dispatched] { ++batch_dispatched; });
  }

  TaskScheduler::TaskGroup interactive(&scheduler);
  {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    interactive.Submit([&] { batch_seen_by_interactive = batch_dispatched; });
  }

  batch.Wait();
  interactive.Wait();
  ASSERT_EQ(batch_dispatched, 50);
  EXPECT_EQ(batch_seen_by_interactive, 0)
      << batch_seen_by_interactive
      << " batch tasks ran before the interactive task despite the backlog "
         "being queued first";
}

// The contrast case: the same submission at normal priority is FIFO behind
// the entire backlog. This is the starvation the high lane exists to fix.
TEST(ServeStarvationTest, NormalPriorityWaitsBehindBacklogDeterministic) {
  TaskScheduler scheduler(0);
  int batch_dispatched = 0;
  int batch_seen_by_latecomer = -1;

  TaskScheduler::TaskGroup batch(&scheduler);
  for (int i = 0; i < 50; ++i) {
    batch.Submit([&batch_dispatched] { ++batch_dispatched; });
  }
  TaskScheduler::TaskGroup latecomer(&scheduler);
  latecomer.Submit([&] { batch_seen_by_latecomer = batch_dispatched; });

  batch.Wait();
  latecomer.Wait();
  EXPECT_EQ(batch_seen_by_latecomer, 50)
      << "FIFO contrast broke: the normal-priority latecomer overtook the "
         "backlog";
}

// Threaded bound: two workers chew through ~600 batch tasks of ~1ms each
// (~300ms of backlog per worker) while interactive tasks arrive every few
// milliseconds. Each interactive submit→start latency is measured; the lane
// must keep the worst case far below the FIFO expectation (hundreds of ms).
TEST(ServeStarvationTest, InteractiveQueueWaitBoundedUnderBatchFlood) {
  TaskScheduler scheduler(2);

  std::atomic<bool> flood_on{true};
  std::thread batch_flood([&] {
    while (flood_on.load(std::memory_order_relaxed)) {
      TaskScheduler::TaskGroup batch(&scheduler);
      for (int i = 0; i < 64; ++i) {
        batch.Submit([] {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
      }
      batch.Wait();
    }
  });

  // Let the backlog build before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::vector<double> waits_ms;
  for (int probe = 0; probe < 20; ++probe) {
    ScopedTaskPriority scope(TaskPriority::kHigh);
    TaskScheduler::TaskGroup interactive(&scheduler);
    Clock::time_point submitted = Clock::now();
    double wait_ms = -1;
    interactive.Submit([&wait_ms, submitted] { wait_ms = MsSince(submitted); });
    interactive.Wait();
    ASSERT_GE(wait_ms, 0);
    waits_ms.push_back(wait_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  flood_on.store(false);
  batch_flood.join();

  std::sort(waits_ms.begin(), waits_ms.end());
  double p99 = waits_ms[waits_ms.size() - 1];  // worst of 20 probes
  // A FIFO queue behind 64 outstanding 1ms tasks on 2 workers would wait
  // ~32ms+ per probe; the high lane only waits for in-flight task bodies
  // (~1ms) plus scheduling noise. 100ms is a generous CI-safe ceiling that
  // still rules out FIFO behaviour across 20 probes.
  EXPECT_LT(p99, 100.0) << "worst interactive queue wait suggests starvation";
}

}  // namespace
}  // namespace common
}  // namespace bdcc
