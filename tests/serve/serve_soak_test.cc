// Fault-injection soak of the serving layer (runs in the CI fault job:
// ctest -R "FaultSweep" with BDCC_FAULT_SEED in the environment).
//
// Concurrent TPC-H streams are served through one QueryRunner while seeded
// faults fire at the retryable points — memory.alloc (budget charges fail),
// scheduler.delay (task interleavings perturbed), scheduler.inject
// (admission dispatch fails) — and the test asserts the serving contract:
// every query terminates in exactly one of {ok, shed, cancelled,
// exhausted-after-K-retries}, no query leaves tracked bytes behind, and
// the global pool drains to zero after the streams join.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "gtest/gtest.h"
#include "serve/query_runner.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace serve {
namespace {

// Built before any injection scope is installed (see lifecycle_test.cc).
tpch::TpchDb* SharedDb() {
  static std::unique_ptr<tpch::TpchDb> db = [] {
    tpch::TpchDbOptions options;
    options.scale_factor = 0.003;
    options.seed = 7;
    options.build_plain = false;
    options.build_pk = false;
    return tpch::TpchDb::Create(options).ValueOrDie();
  }();
  return db.get();
}

struct SoakTally {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> exhausted{0};
  std::atomic<uint64_t> undefined{0};
  std::atomic<uint64_t> leaked{0};
};

// One soak round: 4 streams x 6 queries against a deliberately tight
// runner (small pool, small first budgets, short queues) so shedding and
// retries happen even before faults land on top.
void RunSoak(SoakTally* tally) {
  RunnerConfig config;
  config.admission.of(QueryClass::kInteractive) = {1, 1, 100.0};
  config.admission.of(QueryClass::kBatch) = {1, 1, 100.0};
  config.pool_bytes = 1 << 20;
  config.default_budget_bytes = 32 << 10;
  config.max_retries = 2;
  config.backoff_base_ms = 1.0;
  config.backoff_max_ms = 4.0;
  QueryRunner runner(config);
  tpch::TpchDb* db = SharedDb();

  std::vector<std::thread> streams;
  for (int s = 0; s < 4; ++s) {
    streams.emplace_back([&, s] {
      const bool interactive = s % 2 == 0;
      const int interactive_mix[] = {6, 12, 14};
      const int batch_mix[] = {1, 9, 18};
      QueryClass cls =
          interactive ? QueryClass::kInteractive : QueryClass::kBatch;
      for (int i = 0; i < 6; ++i) {
        int q = interactive ? interactive_mix[i % 3] : batch_mix[i % 3];
        QueryReport report = runner.Execute(
            cls,
            [&](exec::ExecContext* ctx,
                uint64_t budget) -> Result<exec::Batch> {
              tpch::QueryContext qc;
              qc.db = &db->db(opt::Scheme::kBdcc);
              qc.exec = ctx;
              qc.scale_factor = db->options().scale_factor;
              qc.planner.memory_limit_bytes = budget;
              qc.planner.num_threads = 2;
              return tpch::RunTpchQuery(q, qc);
            });
        if (report.leaked_bytes != 0) tally->leaked.fetch_add(1);
        switch (report.outcome) {
          case Outcome::kOk:
            tally->ok.fetch_add(1);
            break;
          case Outcome::kShed:
            tally->shed.fetch_add(1);
            break;
          case Outcome::kCancelled:
            tally->cancelled.fetch_add(1);
            break;
          case Outcome::kExhausted:
            tally->exhausted.fetch_add(1);
            break;
          default:
            ADD_FAILURE() << "undefined outcome for Q" << q << ": "
                          << report.status.ToString();
            tally->undefined.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : streams) t.join();
  EXPECT_EQ(runner.pool().reserved(), 0u)
      << "serving pool did not drain to zero";
}

TEST(ServeFaultSweepTest, ConcurrentStreamsTerminateDefinedUnderFaults) {
  SharedDb();  // build the fixture before injection is installed

  uint64_t base_seed = 101;
  if (const char* env = std::getenv("BDCC_FAULT_SEED")) {
    // CI varies the seed; reuse it so each sweep explores a different
    // fault sequence. The point restriction below still applies: only the
    // retryable points are exercised, which is what makes the four-state
    // assertion sound (scan.decode/join.build faults would surface as
    // legitimate kError outcomes).
    base_seed = static_cast<uint64_t>(std::atoll(env));
    if (base_seed == 0) base_seed = 101;
  }

  struct Phase {
    const char* point;
    double probability;
  };
  const Phase phases[] = {
      {fault::kAlloc, 0.05},
      {fault::kTaskDelay, 0.2},
      {fault::kSchedulerInject, 0.1},
  };
  SoakTally tally;
  for (const Phase& phase : phases) {
    fault::ScopedFaultInjection scope(base_seed, phase.probability,
                                      phase.point);
    RunSoak(&tally);
  }

  uint64_t total = tally.ok.load() + tally.shed.load() +
                   tally.cancelled.load() + tally.exhausted.load() +
                   tally.undefined.load();
  EXPECT_EQ(total, 3u * 4 * 6) << "a query vanished without a terminal state";
  EXPECT_EQ(tally.undefined.load(), 0u);
  EXPECT_EQ(tally.leaked.load(), 0u)
      << "queries reported undrained tracked memory";
  EXPECT_GT(tally.ok.load(), 0u) << "soak config too tight: nothing finished";
  std::printf(
      "serve soak (seed %llu): ok=%llu shed=%llu cancelled=%llu "
      "exhausted=%llu, %llu faults fired\n",
      static_cast<unsigned long long>(base_seed),
      static_cast<unsigned long long>(tally.ok.load()),
      static_cast<unsigned long long>(tally.shed.load()),
      static_cast<unsigned long long>(tally.cancelled.load()),
      static_cast<unsigned long long>(tally.exhausted.load()),
      static_cast<unsigned long long>(fault::InjectedCount()));

  // Whatever was injected, the serving layer is intact: with injection
  // masked, a clean query still completes on a fresh runner.
  fault::ScopedFaultInjection off(0, 0.0);
  RunnerConfig config;
  config.pool_bytes = 64 << 20;
  QueryRunner runner(config);
  tpch::TpchDb* db = SharedDb();
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext* ctx, uint64_t budget) -> Result<exec::Batch> {
        tpch::QueryContext qc;
        qc.db = &db->db(opt::Scheme::kBdcc);
        qc.exec = ctx;
        qc.scale_factor = db->options().scale_factor;
        qc.planner.memory_limit_bytes = budget;
        return tpch::RunTpchQuery(6, qc);
      });
  ASSERT_EQ(report.outcome, Outcome::kOk) << report.status.ToString();
}

}  // namespace
}  // namespace serve
}  // namespace bdcc
