// QueryRunner lifecycle tests: every terminal Outcome, the granted-budget
// contract, bounded retry with budget escalation, session cancel/deadline
// reaching queued and mid-execution queries, and the scheduler.inject
// fault point riding the retry path.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "gtest/gtest.h"
#include "serve/query_runner.h"

namespace bdcc {
namespace serve {
namespace {

exec::Batch OneRow() {
  exec::Batch b;
  b.num_rows = 1;
  exec::ColumnVector c(TypeId::kInt32);
  c.i32 = {42};
  b.columns.push_back(std::move(c));
  return b;
}

RunnerConfig SmallConfig() {
  RunnerConfig config;
  config.admission.of(QueryClass::kInteractive) = {2, 2, 0};
  config.admission.of(QueryClass::kBatch) = {1, 2, 0};
  config.pool_bytes = 1 << 20;
  config.default_budget_bytes = 1 << 10;
  config.max_retries = 3;
  config.backoff_base_ms = 1.0;
  config.backoff_max_ms = 4.0;
  return config;
}

TEST(QueryRunnerTest, OkQueryGetsGrantedBudgetInstalled) {
  QueryRunner runner(SmallConfig());
  uint64_t seen_limit = 0;
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext* ctx, uint64_t budget) -> Result<exec::Batch> {
        EXPECT_EQ(budget, uint64_t{1} << 10);
        seen_limit = ctx->memory()->limit();
        return OneRow();
      });
  EXPECT_EQ(report.outcome, Outcome::kOk);
  EXPECT_TRUE(report.status.ok());
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(seen_limit, uint64_t{1} << 10)
      << "granted budget was not installed on the context's tracker";
  EXPECT_EQ(report.result.num_rows, 1u);
  EXPECT_EQ(runner.stats().ok, 1u);
  EXPECT_EQ(runner.pool().reserved(), 0u);
}

TEST(QueryRunnerTest, ResourceExhaustedRetriesWithDoubledBudget) {
  QueryRunner runner(SmallConfig());
  std::vector<uint64_t> budgets;
  QueryReport report = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t budget) -> Result<exec::Batch> {
        budgets.push_back(budget);
        if (budget < (4u << 10)) {
          return Status::ResourceExhausted("needs more");
        }
        return OneRow();
      });
  EXPECT_EQ(report.outcome, Outcome::kOk);
  EXPECT_EQ(report.attempts, 3);
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_EQ(budgets[0], 1u << 10);
  EXPECT_EQ(budgets[1], 2u << 10);
  EXPECT_EQ(budgets[2], 4u << 10);
  EXPECT_EQ(report.budget_bytes, 4u << 10);
  EXPECT_GT(report.backoff_ms, 0);
  EXPECT_EQ(runner.stats().retries, 2u);
}

TEST(QueryRunnerTest, ExhaustedAfterKRetries) {
  RunnerConfig config = SmallConfig();
  config.max_retries = 2;
  QueryRunner runner(config);
  int calls = 0;
  QueryReport report = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        ++calls;
        return Status::ResourceExhausted("never enough");
      });
  EXPECT_EQ(report.outcome, Outcome::kExhausted);
  EXPECT_TRUE(report.status.IsResourceExhausted());
  EXPECT_EQ(calls, 3) << "K retries means K+1 attempts";
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(runner.stats().exhausted, 1u);
  EXPECT_EQ(runner.stats().retries, 2u);
  EXPECT_EQ(runner.pool().reserved(), 0u);
}

TEST(QueryRunnerTest, BudgetEscalationCapsAtPool) {
  RunnerConfig config = SmallConfig();
  config.pool_bytes = 3 << 10;  // not a power-of-two multiple of the budget
  config.default_budget_bytes = 1 << 10;
  QueryRunner runner(config);
  std::vector<uint64_t> budgets;
  QueryReport report = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t budget) -> Result<exec::Batch> {
        budgets.push_back(budget);
        return Status::ResourceExhausted("never enough");
      });
  EXPECT_EQ(report.outcome, Outcome::kExhausted);
  ASSERT_EQ(budgets.size(), 4u);
  EXPECT_EQ(budgets[1], 2u << 10);
  EXPECT_EQ(budgets[2], 3u << 10) << "escalation must cap at the pool";
  EXPECT_EQ(budgets[3], 3u << 10);
}

TEST(QueryRunnerTest, NonRetryableErrorIsTerminal) {
  QueryRunner runner(SmallConfig());
  int calls = 0;
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        ++calls;
        return Status::IOError("disk on fire");
      });
  EXPECT_EQ(report.outcome, Outcome::kError);
  EXPECT_EQ(calls, 1) << "non-retryable errors must not burn retries";
  EXPECT_EQ(runner.stats().errors, 1u);
}

TEST(QueryRunnerTest, ShedWhenQueueFull) {
  RunnerConfig config = SmallConfig();
  config.admission.of(QueryClass::kBatch) = {1, 0, 0};
  QueryRunner runner(config);

  std::mutex mu;
  std::condition_variable cv;
  bool occupying = false;
  bool release = false;
  std::thread occupant([&] {
    runner.Execute(QueryClass::kBatch,
                   [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
                     {
                       std::lock_guard<std::mutex> lock(mu);
                       occupying = true;
                     }
                     cv.notify_all();
                     std::unique_lock<std::mutex> lock(mu);
                     cv.wait(lock, [&] { return release; });
                     return OneRow();
                   });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return occupying; });
  }

  QueryReport shed = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        ADD_FAILURE() << "shed query must never execute";
        return OneRow();
      });
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_TRUE(shed.status.IsUnavailable());
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_EQ(shed.attempts, 0);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  occupant.join();
  EXPECT_EQ(runner.stats().shed, 1u);
  EXPECT_EQ(runner.stats().ok, 1u);
}

TEST(QueryRunnerTest, PreCancelledSessionNeverExecutes) {
  QueryRunner runner(SmallConfig());
  Session session;
  session.Cancel();
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        ADD_FAILURE() << "cancelled session must never execute";
        return OneRow();
      },
      &session);
  EXPECT_EQ(report.outcome, Outcome::kCancelled);
  EXPECT_TRUE(report.status.IsCancelled());
  EXPECT_EQ(report.attempts, 0);
}

TEST(QueryRunnerTest, SessionCancelReachesMidExecution) {
  QueryRunner runner(SmallConfig());
  Session session;
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext* ctx, uint64_t) -> Result<exec::Batch> {
        // Simulate an operator loop polling the lifecycle: the session
        // cancel must land on this attempt's QueryControl.
        session.Cancel();
        Status s = ctx->CheckLifecycle();
        EXPECT_FALSE(s.ok());
        return s;
      },
      &session);
  EXPECT_EQ(report.outcome, Outcome::kCancelled);
  EXPECT_TRUE(report.status.IsCancelled()) << report.status.ToString();
  EXPECT_EQ(runner.stats().cancelled, 1u);
}

TEST(QueryRunnerTest, SessionDeadlineBoundsRetries) {
  RunnerConfig config = SmallConfig();
  config.backoff_base_ms = 50.0;
  config.backoff_max_ms = 50.0;
  config.max_retries = 10;
  QueryRunner runner(config);
  Session session;
  session.SetTimeout(std::chrono::milliseconds(30));
  QueryReport report = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        return Status::ResourceExhausted("forces backoff");
      },
      &session);
  // The first backoff (>= 25ms with jitter) outlives the 30ms deadline, so
  // the loop must stop as cancelled long before 10 retries.
  EXPECT_EQ(report.outcome, Outcome::kCancelled);
  EXPECT_TRUE(report.status.IsDeadlineExceeded()) << report.status.ToString();
  EXPECT_LE(report.attempts, 2);
}

TEST(QueryRunnerTest, DeadlineInsideQueryReportsCancelled) {
  QueryRunner runner(SmallConfig());
  Session session;
  session.SetTimeout(std::chrono::milliseconds(10));
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext* ctx, uint64_t) -> Result<exec::Batch> {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        Status s = ctx->CheckLifecycle();
        EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
        return s;
      },
      &session);
  EXPECT_EQ(report.outcome, Outcome::kCancelled);
  EXPECT_TRUE(report.status.IsDeadlineExceeded());
}

TEST(QueryRunnerTest, SchedulerInjectFaultRidesRetryPath) {
  RunnerConfig config = SmallConfig();
  config.max_retries = 2;
  QueryRunner runner(config);
  fault::ScopedFaultInjection scope(/*seed=*/7, /*probability=*/1.0,
                                    fault::kSchedulerInject);
  int calls = 0;
  QueryReport report = runner.Execute(
      QueryClass::kBatch,
      [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
        ++calls;
        return OneRow();
      });
  EXPECT_EQ(calls, 0) << "injected dispatch fault must pre-empt the body";
  EXPECT_EQ(report.outcome, Outcome::kExhausted);
  EXPECT_TRUE(report.status.IsResourceExhausted());
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(runner.pool().reserved(), 0u);
}

TEST(QueryRunnerTest, LeakedTrackedBytesAreReported) {
  QueryRunner runner(SmallConfig());
  QueryReport report = runner.Execute(
      QueryClass::kInteractive,
      [&](exec::ExecContext* ctx, uint64_t) -> Result<exec::Batch> {
        ctx->memory()->Allocate(100);  // deliberately never released
        return OneRow();
      });
  EXPECT_EQ(report.outcome, Outcome::kOk);
  EXPECT_EQ(report.leaked_bytes, 100u)
      << "the report must expose undrained tracked bytes";
  EXPECT_EQ(report.peak_bytes, 100u);
}

TEST(QueryRunnerTest, ConcurrentStreamsAllTerminateDefined) {
  RunnerConfig config = SmallConfig();
  config.admission.of(QueryClass::kInteractive) = {2, 1, 50.0};
  config.admission.of(QueryClass::kBatch) = {1, 1, 50.0};
  QueryRunner runner(config);
  std::atomic<uint64_t> undefined{0};
  std::vector<std::thread> streams;
  for (int s = 0; s < 6; ++s) {
    streams.emplace_back([&, s] {
      QueryClass cls =
          s % 2 == 0 ? QueryClass::kInteractive : QueryClass::kBatch;
      for (int i = 0; i < 10; ++i) {
        QueryReport r = runner.Execute(
            cls, [&](exec::ExecContext*, uint64_t) -> Result<exec::Batch> {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              return OneRow();
            });
        if (r.outcome != Outcome::kOk && r.outcome != Outcome::kShed &&
            r.outcome != Outcome::kCancelled &&
            r.outcome != Outcome::kExhausted) {
          undefined.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : streams) t.join();
  EXPECT_EQ(undefined.load(), 0u);
  RunnerStats stats = runner.stats();
  EXPECT_EQ(stats.ok + stats.shed + stats.cancelled + stats.exhausted +
                stats.errors,
            60u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(runner.pool().reserved(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace bdcc
