// AdmissionController and MemoryPool unit tests: slot accounting, bounded
// queues with FIFO grant order, queue-full and queue-wait shedding with
// retry-after hints, cancellation while queued, and pool reservations that
// block, time out, or cancel.
#include <atomic>
#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "serve/admission.h"

namespace bdcc {
namespace serve {
namespace {

AdmissionConfig OneSlotConfig(int queue_capacity,
                              double max_queue_wait_ms = 0) {
  AdmissionConfig config;
  for (int c = 0; c < kNumQueryClasses; ++c) {
    config.limits[c] = {1, queue_capacity, max_queue_wait_ms};
  }
  return config;
}

TEST(AdmissionControllerTest, FastPathAdmitsUpToSlots) {
  AdmissionConfig config;
  config.of(QueryClass::kInteractive) = {2, 0, 0};
  config.of(QueryClass::kBatch) = {1, 0, 0};
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit(QueryClass::kInteractive, nullptr).status.ok());
  EXPECT_TRUE(admission.Admit(QueryClass::kInteractive, nullptr).status.ok());
  EXPECT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());

  // Both classes full, zero queue capacity: immediate shed with a hint.
  AdmitResult shed = admission.Admit(QueryClass::kInteractive, nullptr);
  ASSERT_TRUE(shed.status.IsUnavailable()) << shed.status.ToString();
  EXPECT_GT(shed.retry_after_ms, 0);

  // Classes are independent: batch being full never sheds interactive.
  admission.Release(QueryClass::kInteractive);
  EXPECT_TRUE(admission.Admit(QueryClass::kInteractive, nullptr).status.ok());

  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
}

TEST(AdmissionControllerTest, QueuedWaiterGrantedAfterRelease) {
  AdmissionController admission(OneSlotConfig(/*queue_capacity=*/2));
  ASSERT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmitResult r = admission.Admit(QueryClass::kBatch, nullptr);
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_GT(r.queue_wait_ms, 0);
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load()) << "waiter admitted while the slot was held";
  admission.Release(QueryClass::kBatch);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  admission.Release(QueryClass::kBatch);
}

TEST(AdmissionControllerTest, GrantOrderIsFifo) {
  AdmissionController admission(OneSlotConfig(/*queue_capacity=*/4));
  ASSERT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());

  std::atomic<int> finish_seq{0};
  int finished_at[2] = {-1, -1};
  std::thread first([&] {
    admission.Admit(QueryClass::kBatch, nullptr);
    finished_at[0] = finish_seq.fetch_add(1);
    admission.Release(QueryClass::kBatch);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread second([&] {
    admission.Admit(QueryClass::kBatch, nullptr);
    finished_at[1] = finish_seq.fetch_add(1);
    admission.Release(QueryClass::kBatch);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  admission.Release(QueryClass::kBatch);
  first.join();
  second.join();
  EXPECT_LT(finished_at[0], finished_at[1])
      << "the earlier waiter was granted after the later one";
}

TEST(AdmissionControllerTest, QueueFullShedsWithDepthScaledHint) {
  AdmissionController admission(OneSlotConfig(/*queue_capacity=*/1));
  ASSERT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());

  std::thread waiter([&] {
    // Occupies the single queue entry until the slot frees.
    EXPECT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());
    admission.Release(QueryClass::kBatch);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  AdmitResult shed = admission.Admit(QueryClass::kBatch, nullptr);
  ASSERT_TRUE(shed.status.IsUnavailable());
  // Hint scales with depth: 1 queued + 1 executing + self = 3x base.
  EXPECT_DOUBLE_EQ(shed.retry_after_ms,
                   admission.config().retry_after_base_ms * 3);
  admission.Release(QueryClass::kBatch);
  waiter.join();
  EXPECT_EQ(admission.stats().shed_queue_full, 1u);
}

TEST(AdmissionControllerTest, QueueWaitLimitSheds) {
  AdmissionController admission(
      OneSlotConfig(/*queue_capacity=*/2, /*max_queue_wait_ms=*/20));
  ASSERT_TRUE(admission.Admit(QueryClass::kInteractive, nullptr).status.ok());

  AdmitResult shed = admission.Admit(QueryClass::kInteractive, nullptr);
  ASSERT_TRUE(shed.status.IsUnavailable()) << shed.status.ToString();
  EXPECT_GE(shed.queue_wait_ms, 20.0);
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_EQ(admission.stats().shed_queue_wait, 1u);

  // The abandoned queue entry is gone: the next waiter gets the slot.
  admission.Release(QueryClass::kInteractive);
  EXPECT_TRUE(admission.Admit(QueryClass::kInteractive, nullptr).status.ok());
}

TEST(AdmissionControllerTest, CancelledWhileQueued) {
  AdmissionController admission(OneSlotConfig(/*queue_capacity=*/2));
  ASSERT_TRUE(admission.Admit(QueryClass::kBatch, nullptr).status.ok());

  std::atomic<bool> cancel{false};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    cancel.store(true);
  });
  AdmitResult r = admission.Admit(QueryClass::kBatch,
                                  [&cancel] { return cancel.load(); });
  flipper.join();
  ASSERT_TRUE(r.status.IsCancelled()) << r.status.ToString();
  EXPECT_EQ(admission.stats().cancelled_in_queue, 1u);
  admission.Release(QueryClass::kBatch);
}

TEST(MemoryPoolTest, ReserveAndRelease) {
  MemoryPool pool(1000);
  EXPECT_TRUE(pool.Reserve(600, 0, nullptr).ok());
  EXPECT_EQ(pool.reserved(), 600u);
  EXPECT_TRUE(pool.Reserve(400, 0, nullptr).ok());

  // Full: an immediate (zero-wait) reserve refuses.
  Status s = pool.Reserve(1, 0, nullptr);
  ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();

  pool.Release(600);
  EXPECT_TRUE(pool.Reserve(600, 0, nullptr).ok());
  pool.Release(1000);
  EXPECT_EQ(pool.reserved(), 0u);
}

TEST(MemoryPoolTest, OversizedRequestFailsImmediately) {
  MemoryPool pool(100);
  Status s = pool.Reserve(101, /*wait_limit_ms=*/1000, nullptr);
  ASSERT_TRUE(s.IsResourceExhausted());
}

TEST(MemoryPoolTest, BlockedReserveSucceedsAfterRelease) {
  MemoryPool pool(100);
  ASSERT_TRUE(pool.Reserve(100, 0, nullptr).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    pool.Release(100);
  });
  Status s = pool.Reserve(50, /*wait_limit_ms=*/2000, nullptr);
  releaser.join();
  EXPECT_TRUE(s.ok()) << s.ToString();
  pool.Release(50);
}

TEST(MemoryPoolTest, WaitLimitExpires) {
  MemoryPool pool(100);
  ASSERT_TRUE(pool.Reserve(100, 0, nullptr).ok());
  Status s = pool.Reserve(50, /*wait_limit_ms=*/15, nullptr);
  ASSERT_TRUE(s.IsResourceExhausted()) << s.ToString();
  pool.Release(100);
}

TEST(MemoryPoolTest, CancelWhileWaiting) {
  MemoryPool pool(100);
  ASSERT_TRUE(pool.Reserve(100, 0, nullptr).ok());
  std::atomic<bool> cancel{false};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    cancel.store(true);
  });
  Status s = pool.Reserve(50, /*wait_limit_ms=*/5000,
                          [&cancel] { return cancel.load(); });
  flipper.join();
  ASSERT_TRUE(s.IsCancelled()) << s.ToString();
  pool.Release(100);
}

}  // namespace
}  // namespace serve
}  // namespace bdcc
