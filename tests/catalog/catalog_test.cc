#include "catalog/catalog.h"

#include "catalog/ddl_parser.h"
#include "catalog/schema_graph.h"
#include "gtest/gtest.h"
#include "tpch/tpch_schema.h"

namespace bdcc {
namespace catalog {
namespace {

TEST(CatalogTest, TableAndFkValidation) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable({"A", {{"a", TypeId::kInt32}}, {"a"}}).ok());
  ASSERT_TRUE(cat.AddTable({"B", {{"b", TypeId::kInt32}}, {}}).ok());
  EXPECT_FALSE(cat.AddTable({"A", {}, {}}).ok());  // duplicate
  EXPECT_TRUE(cat.AddForeignKey({"FK", "B", {"b"}, "A", {"a"}}).ok());
  EXPECT_FALSE(cat.AddForeignKey({"FK", "B", {"b"}, "A", {"a"}}).ok());
  EXPECT_FALSE(cat.AddForeignKey({"F2", "B", {"zz"}, "A", {"a"}}).ok());
  EXPECT_FALSE(cat.AddForeignKey({"F3", "B", {"b"}, "A", {"a", "a"}}).ok());
  EXPECT_TRUE(cat.GetForeignKey("FK").ok());
  EXPECT_FALSE(cat.GetForeignKey("NOPE").ok());
  EXPECT_EQ(cat.ForeignKeysFrom("B").size(), 1u);
  EXPECT_EQ(cat.ForeignKeysTo("A").size(), 1u);
}

TEST(CatalogTest, IndexHintsAndFkMatching) {
  Catalog cat;
  ASSERT_TRUE(
      cat.AddTable({"A", {{"a", TypeId::kInt32}, {"x", TypeId::kDate}}, {"a"}})
          .ok());
  ASSERT_TRUE(cat.AddTable({"B", {{"b", TypeId::kInt32}}, {}}).ok());
  ASSERT_TRUE(cat.AddForeignKey({"FK", "B", {"b"}, "A", {"a"}}).ok());
  ASSERT_TRUE(cat.AddIndex({"x_idx", "A", {"x"}}).ok());
  ASSERT_TRUE(cat.AddIndex({"b_idx", "B", {"b"}}).ok());
  EXPECT_FALSE(cat.AddIndex({"bad", "A", {"zzz"}}).ok());

  const IndexHint* x_idx = cat.IndexesOn("A")[0];
  EXPECT_EQ(cat.IndexMatchesForeignKey(*x_idx), nullptr);
  const IndexHint* b_idx = cat.IndexesOn("B")[0];
  const ForeignKey* fk = cat.IndexMatchesForeignKey(*b_idx);
  ASSERT_NE(fk, nullptr);
  EXPECT_EQ(fk->id, "FK");
}

TEST(DdlParserTest, ParsesTpchSchema) {
  Catalog cat = tpch::MakeTpchCatalog(true).ValueOrDie();
  EXPECT_EQ(cat.tables().size(), 8u);
  EXPECT_EQ(cat.foreign_keys().size(), 10u);
  EXPECT_EQ(cat.indexes().size(), 11u);

  const TableDef* li = cat.GetTable("LINEITEM").ValueOrDie();
  EXPECT_EQ(li->columns.size(), 16u);
  EXPECT_EQ(li->primary_key,
            (std::vector<std::string>{"l_orderkey", "l_linenumber"}));
  EXPECT_EQ(li->ColumnType("l_shipdate").ValueOrDie(), TypeId::kDate);
  EXPECT_EQ(li->ColumnType("l_quantity").ValueOrDie(), TypeId::kFloat64);
  EXPECT_EQ(li->ColumnType("l_comment").ValueOrDie(), TypeId::kString);

  const ForeignKey* fk = cat.GetForeignKey("FK_L_PS").ValueOrDie();
  EXPECT_EQ(fk->from_columns,
            (std::vector<std::string>{"l_partkey", "l_suppkey"}));
  EXPECT_EQ(fk->to_table, "PARTSUPP");
}

TEST(DdlParserTest, SyntaxErrors) {
  Catalog cat;
  EXPECT_FALSE(ParseDdl("CREATE TABLE t (a INT;", &cat).ok());
  EXPECT_FALSE(ParseDdl("CREATE VIEW v AS SELECT 1;", &cat).ok());
  EXPECT_FALSE(ParseDdl("CREATE TABLE t (a WIBBLE);", &cat).ok());
  Catalog cat2;
  EXPECT_FALSE(
      ParseDdl("CREATE INDEX i ON missing (a);", &cat2).ok());
}

TEST(DdlParserTest, CommentsAndCase) {
  Catalog cat;
  ASSERT_TRUE(ParseDdl(R"(
    -- a comment
    create table T (
      a int not null,  -- trailing comment
      b decimal(15,2),
      primary key (a)
    );
  )",
                       &cat)
                  .ok());
  EXPECT_EQ(cat.GetTable("T").ValueOrDie()->columns.size(), 2u);
  EXPECT_EQ(cat.GetTable("T").ValueOrDie()->ColumnType("b").ValueOrDie(),
            TypeId::kFloat64);
}

TEST(SchemaGraphTest, TpchTopologicalOrder) {
  Catalog cat = tpch::MakeTpchCatalog(false).ValueOrDie();
  SchemaGraph graph(&cat);
  EXPECT_TRUE(graph.IsDag());
  auto order = graph.TopologicalFromLeaves().ValueOrDie();
  ASSERT_EQ(order.size(), 8u);
  auto pos = [&](const std::string& t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  // Referenced tables come before referencing tables.
  EXPECT_LT(pos("REGION"), pos("NATION"));
  EXPECT_LT(pos("NATION"), pos("SUPPLIER"));
  EXPECT_LT(pos("NATION"), pos("CUSTOMER"));
  EXPECT_LT(pos("CUSTOMER"), pos("ORDERS"));
  EXPECT_LT(pos("ORDERS"), pos("LINEITEM"));
  EXPECT_LT(pos("PART"), pos("PARTSUPP"));
  EXPECT_LT(pos("PARTSUPP"), pos("LINEITEM"));
  // Leaves: tables with no outgoing FK.
  auto leaves = graph.Leaves();
  EXPECT_EQ(leaves.size(), 2u);  // REGION, PART
}

TEST(SchemaGraphTest, DetectsCycles) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable({"A", {{"a", TypeId::kInt32}}, {}}).ok());
  ASSERT_TRUE(cat.AddTable({"B", {{"b", TypeId::kInt32}}, {}}).ok());
  ASSERT_TRUE(cat.AddForeignKey({"F1", "A", {"a"}, "B", {"b"}}).ok());
  ASSERT_TRUE(cat.AddForeignKey({"F2", "B", {"b"}, "A", {"a"}}).ok());
  SchemaGraph graph(&cat);
  EXPECT_FALSE(graph.IsDag());
  EXPECT_FALSE(graph.TopologicalFromLeaves().ok());
}

}  // namespace
}  // namespace catalog
}  // namespace bdcc
