#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/device_model.h"

namespace bdcc {
namespace io {
namespace {

TEST(DeviceModelTest, EfficientRandomAccessSize) {
  // Paper Section III: AR such that random reads reach ~80% of sequential.
  DeviceModel ssd{DeviceProfile::SsdRaid0()};
  // bw=1GB/s, seek=8us, e=0.8 -> 32KB.
  EXPECT_EQ(ssd.EfficientRandomAccessSize(0.8), 32u * 1024);

  DeviceModel disk{DeviceProfile::MagneticDisk()};
  // "a few MB for magnetic disks".
  size_t ar = disk.EfficientRandomAccessSize(0.8);
  EXPECT_GE(ar, 1u << 21);
  EXPECT_LE(ar, 8u << 20);

  DeviceModel flash{DeviceProfile::Flash()};
  // [5]: flash ~32KB.
  EXPECT_NEAR(static_cast<double>(flash.EfficientRandomAccessSize(0.8)),
              32.0 * 1024, 16.0 * 1024);
}

TEST(DeviceModelTest, CostAccounting) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  dev.ChargeSequential(1'000'000);
  EXPECT_DOUBLE_EQ(dev.stats().simulated_seconds, 0.001);
  dev.ChargeRandom(0);
  EXPECT_DOUBLE_EQ(dev.stats().simulated_seconds, 0.001 + 8e-6);
  EXPECT_EQ(dev.stats().sequential_requests, 1u);
  EXPECT_EQ(dev.stats().random_requests, 1u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().bytes_read, 0u);
}

TEST(DeviceModelTest, RandomApproachesSequentialAtAr) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  size_t ar = dev.EfficientRandomAccessSize(0.8);
  double seq = dev.SequentialCost(ar);
  double rnd = dev.RandomCost(ar);
  EXPECT_NEAR(seq / rnd, 0.8, 0.02);
}

TEST(BufferPoolTest, HitsAndMisses) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  BufferPool pool(&dev, 1ull << 30);
  ColumnHandle col = pool.RegisterColumn("t.c", 320 * 1024, 81920);
  // 4 bytes/row, 32KB pages -> 8192 rows per page, 10 pages.
  EXPECT_EQ(pool.ColumnPages(col), 10u);
  pool.ReadRows(col, 0, 8192);
  EXPECT_EQ(pool.stats().page_misses, 1u);
  pool.ReadRows(col, 0, 8192);  // cached
  EXPECT_EQ(pool.stats().page_hits, 1u);
  pool.ReadRows(col, 0, 81920);  // rest of the column
  EXPECT_EQ(pool.stats().page_misses, 10u);
  pool.Clear();
  pool.ReadRows(col, 0, 8192);
  EXPECT_EQ(pool.stats().page_misses, 11u);
}

TEST(BufferPoolTest, CoalescesMissRuns) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  BufferPool pool(&dev, 1ull << 30);
  ColumnHandle col = pool.RegisterColumn("t.c", 10 * 32 * 1024, 81920);
  pool.ReadRows(col, 0, 81920);  // all 10 pages in one request
  // One seek for the run head + sequential continuation.
  EXPECT_EQ(dev.stats().random_requests, 1u);
  EXPECT_EQ(dev.stats().sequential_requests, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 10u * 32 * 1024);
}

TEST(BufferPoolTest, ScatteredReadsPaySeeks) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  BufferPool pool(&dev, 1ull << 30);
  ColumnHandle col = pool.RegisterColumn("t.c", 100 * 32 * 1024, 819200);
  // Touch every 10th page: 10 separate random requests.
  for (int p = 0; p < 100; p += 10) {
    pool.ReadRows(col, static_cast<uint64_t>(p) * 8192,
                  static_cast<uint64_t>(p) * 8192 + 1);
  }
  EXPECT_EQ(dev.stats().random_requests, 10u);
  // Scattered I/O costs more time than one sequential sweep of same bytes.
  DeviceModel dev2{DeviceProfile::SsdRaid0()};
  double sweep = dev2.RandomCost(10 * 32 * 1024);
  EXPECT_GT(dev.stats().simulated_seconds, sweep);
}

TEST(BufferPoolTest, EvictsLru) {
  DeviceModel dev{DeviceProfile::SsdRaid0()};
  BufferPool pool(&dev, 2 * 32 * 1024);  // 2 pages
  ColumnHandle col = pool.RegisterColumn("t.c", 4 * 32 * 1024, 32768);
  pool.ReadRows(col, 0, 8192);       // page 0
  pool.ReadRows(col, 8192, 16384);   // page 1
  pool.ReadRows(col, 16384, 24576);  // page 2 -> evicts page 0
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.ReadRows(col, 0, 8192);  // page 0 again: miss
  EXPECT_EQ(pool.stats().page_misses, 4u);
}

}  // namespace
}  // namespace io
}  // namespace bdcc
