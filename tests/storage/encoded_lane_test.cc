// EncodedLane property tests: per-block codec choice, DecodeSpan round-trip
// against the flat lane, and RangeMask/VerdictMask equality with a scalar
// reference over adversarial lane shapes (constant blocks, max-length runs,
// alternating values, ragged tails, extreme int32 bounds, empty lanes).
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/compression/encoded_column.h"

namespace bdcc {
namespace compression {
namespace {

constexpr int32_t kI32Min = std::numeric_limits<int32_t>::min();
constexpr int32_t kI32Max = std::numeric_limits<int32_t>::max();

using Verdict = EncodedLane::SpanVerdict;

// The lane shapes the codecs care about.
std::vector<int32_t> ConstantLane(size_t n, int32_t v) {
  return std::vector<int32_t>(n, v);
}
std::vector<int32_t> RunsLane(size_t n, Rng* rng, int max_run,
                              int32_t lo, int32_t hi) {
  std::vector<int32_t> lane;
  lane.reserve(n);
  while (lane.size() < n) {
    int32_t v = static_cast<int32_t>(rng->Uniform(lo, hi));
    size_t run = static_cast<size_t>(rng->Uniform(1, max_run));
    for (size_t i = 0; i < run && lane.size() < n; ++i) lane.push_back(v);
  }
  return lane;
}
std::vector<int32_t> AlternatingLane(size_t n, int32_t a, int32_t b) {
  std::vector<int32_t> lane(n);
  for (size_t i = 0; i < n; ++i) lane[i] = (i & 1) ? b : a;
  return lane;
}
std::vector<int32_t> RandomLane(size_t n, Rng* rng, int32_t lo, int32_t hi) {
  std::vector<int32_t> lane(n);
  for (size_t i = 0; i < n; ++i) {
    lane[i] = static_cast<int32_t>(rng->Uniform(lo, hi));
  }
  return lane;
}

struct NamedLane {
  const char* name;
  std::vector<int32_t> lane;
};

std::vector<NamedLane> AdversarialLanes() {
  Rng rng(41);
  std::vector<NamedLane> lanes;
  lanes.push_back({"empty", {}});
  lanes.push_back({"single", {42}});
  lanes.push_back({"constant_small", ConstantLane(100, 7)});
  lanes.push_back({"constant_blocks", ConstantLane(5000, -3)});
  lanes.push_back({"constant_int32_min", ConstantLane(1500, kI32Min)});
  lanes.push_back({"constant_int32_max", ConstantLane(1500, kI32Max)});
  // One run spanning several blocks: run length maxes out at the block
  // boundary, so prefix ends hit their largest representable values.
  lanes.push_back({"max_run_length", ConstantLane(3 * 1024 + 17, 99)});
  lanes.push_back({"alternating", AlternatingLane(2048, 5, 6)});
  lanes.push_back({"alternating_extremes",
                   AlternatingLane(1000, kI32Min, kI32Max)});
  lanes.push_back({"long_runs", RunsLane(6000, &rng, 400, -50, 50)});
  lanes.push_back({"short_runs", RunsLane(3000, &rng, 4, 0, 10)});
  lanes.push_back({"narrow_random", RandomLane(4000, &rng, 100, 160)});
  lanes.push_back({"wide_random", RandomLane(4000, &rng, kI32Min, kI32Max)});
  lanes.push_back({"negative_narrow", RandomLane(2000, &rng, -2000, -1990)});
  // Ragged tail: not a multiple of any block size we test with.
  lanes.push_back({"ragged", RandomLane(1031, &rng, 0, 7)});
  return lanes;
}

// Scalar reference for RangeMask.
std::vector<uint8_t> RefRangeMask(const std::vector<int32_t>& lane,
                                  uint64_t begin, uint64_t end, int32_t lo,
                                  int32_t hi,
                                  const std::vector<uint8_t>& init) {
  std::vector<uint8_t> mask = init;
  for (uint64_t i = begin; i < end; ++i) {
    uint8_t pass = lane[i] >= lo && lane[i] <= hi;
    mask[i - begin] = mask[i - begin] & pass;
  }
  return mask;
}

void CheckVerdictConsistent(Verdict v, const std::vector<uint8_t>& init,
                            const std::vector<uint8_t>& mask,
                            const std::vector<int32_t>& lane, uint64_t begin,
                            int32_t lo, int32_t hi, const char* name) {
  size_t n = mask.size();
  if (v == Verdict::kAllPass) {
    // All-pass means the predicate changed nothing.
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(mask[i], init[i]) << name << " i=" << i;
      ASSERT_TRUE(lane[begin + i] >= lo && lane[begin + i] <= hi)
          << name << " claims all-pass but row " << begin + i << " fails";
    }
  } else if (v == Verdict::kNonePass) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(mask[i], 0) << name << " i=" << i;
      ASSERT_FALSE(lane[begin + i] >= lo && lane[begin + i] <= hi)
          << name << " claims none-pass but row " << begin + i << " passes";
    }
  }
}

TEST(EncodedLaneTest, CodecChoiceMatchesLaneShape) {
  const uint32_t block = 1024;
  {
    std::vector<int32_t> lane = ConstantLane(5000, -3);
    EncodedLane enc = EncodedLane::Build(lane.data(), lane.size(), block);
    EXPECT_GE(enc.blocks_by_codec()[static_cast<int>(Codec::kRle)], 4u);
    EXPECT_LT(enc.encoded_bytes(), lane.size() * 4);
  }
  {
    Rng rng(43);
    std::vector<int32_t> lane = RandomLane(5000, &rng, 100, 160);
    EncodedLane enc = EncodedLane::Build(lane.data(), lane.size(), block);
    EXPECT_GE(enc.blocks_by_codec()[static_cast<int>(Codec::kBitPack)], 4u);
    EXPECT_LT(enc.encoded_bytes(), lane.size() * 4);
  }
  {
    Rng rng(47);
    std::vector<int32_t> lane = RandomLane(5000, &rng, kI32Min, kI32Max);
    EncodedLane enc = EncodedLane::Build(lane.data(), lane.size(), block);
    EXPECT_GE(enc.blocks_by_codec()[static_cast<int>(Codec::kRaw)], 4u);
  }
  {
    EncodedLane enc = EncodedLane::Build(nullptr, 0, block);
    EXPECT_TRUE(enc.empty());
    EXPECT_EQ(enc.rows(), 0u);
  }
}

TEST(EncodedLaneTest, DecodeSpanRoundTrips) {
  Rng rng(53);
  for (const NamedLane& nl : AdversarialLanes()) {
    for (uint32_t block : {64u, 1024u}) {
      EncodedLane enc =
          EncodedLane::Build(nl.lane.data(), nl.lane.size(), block);
      ASSERT_EQ(enc.rows(), nl.lane.size()) << nl.name;
      uint64_t rows = nl.lane.size();
      // Whole lane, plus random unaligned spans (including empty).
      std::vector<std::pair<uint64_t, uint64_t>> spans = {{0, rows}};
      for (int s = 0; s < 12 && rows > 0; ++s) {
        uint64_t a = rng.Uniform(0, rows - 1);
        uint64_t b = rng.Uniform(0, rows);
        spans.push_back({std::min(a, b), std::max(a, b)});
      }
      for (auto [begin, end] : spans) {
        std::vector<int32_t> out(end - begin + 1, -12345);
        enc.DecodeSpan(nl.lane.data(), begin, end, out.data());
        for (uint64_t i = begin; i < end; ++i) {
          ASSERT_EQ(out[i - begin], nl.lane[i])
              << nl.name << " block=" << block << " span=[" << begin << ","
              << end << ") row=" << i;
        }
        EXPECT_EQ(out[end - begin], -12345) << nl.name << ": overwrote past n";
      }
    }
  }
}

TEST(EncodedLaneTest, RangeMaskMatchesScalarReference) {
  Rng rng(59);
  for (const NamedLane& nl : AdversarialLanes()) {
    uint64_t rows = nl.lane.size();
    for (uint32_t block : {64u, 1024u}) {
      EncodedLane enc =
          EncodedLane::Build(nl.lane.data(), nl.lane.size(), block);
      std::vector<std::pair<uint64_t, uint64_t>> spans = {{0, rows}};
      for (int s = 0; s < 8 && rows > 0; ++s) {
        uint64_t a = rng.Uniform(0, rows - 1);
        uint64_t b = rng.Uniform(0, rows);
        spans.push_back({std::min(a, b), std::max(a, b)});
      }
      for (auto [begin, end] : spans) {
        size_t n = end - begin;
        // Bounds chosen to exercise all-pass, none-pass, and mixed.
        struct B { int32_t lo, hi; };
        std::vector<B> bounds = {{kI32Min, kI32Max},
                                 {0, 0},
                                 {kI32Max, kI32Max},
                                 {kI32Min, kI32Min},
                                 {-10, 10},
                                 {100, 130}};
        if (n > 0) {
          int32_t sample = nl.lane[begin + n / 2];
          bounds.push_back({sample, sample});
          bounds.push_back({sample, kI32Max});
          bounds.push_back({kI32Min, sample});
        }
        for (const B& b : bounds) {
          // Pre-ANDed mask: predicates must compose.
          std::vector<uint8_t> init(n);
          for (size_t i = 0; i < n; ++i) init[i] = rng.Uniform(0, 1);
          std::vector<uint8_t> want =
              RefRangeMask(nl.lane, begin, end, b.lo, b.hi, init);
          std::vector<uint8_t> got = init;
          Verdict v = enc.RangeMask(nl.lane.data(), begin, end, b.lo, b.hi,
                                    got.data());
          ASSERT_EQ(got, want)
              << nl.name << " block=" << block << " span=[" << begin << ","
              << end << ") lo=" << b.lo << " hi=" << b.hi;
          CheckVerdictConsistent(v, init, got, nl.lane, begin, b.lo, b.hi,
                                 nl.name);
        }
      }
    }
  }
}

TEST(EncodedLaneTest, RangeMaskVerdictsOnUniformSpans) {
  std::vector<int32_t> lane = ConstantLane(2048, 50);
  EncodedLane enc = EncodedLane::Build(lane.data(), lane.size(), 1024);
  std::vector<uint8_t> mask(2048, 1);
  EXPECT_EQ(enc.RangeMask(lane.data(), 0, 2048, 0, 100, mask.data()),
            Verdict::kAllPass);
  EXPECT_EQ(enc.RangeMask(lane.data(), 0, 2048, 60, 100, mask.data()),
            Verdict::kNonePass);
}

TEST(EncodedLaneTest, VerdictMaskMatchesScalarReference) {
  Rng rng(61);
  const size_t num_codes = 23;
  for (uint32_t block : {64u, 1024u}) {
    // Dict-code-shaped lanes: every value in [0, num_codes).
    std::vector<NamedLane> lanes;
    lanes.push_back({"code_runs", RunsLane(4000, &rng, 300, 0, num_codes - 1)});
    lanes.push_back({"code_random", RandomLane(4000, &rng, 0, num_codes - 1)});
    lanes.push_back({"code_constant", ConstantLane(3000, 17)});
    lanes.push_back({"code_empty", {}});
    for (const NamedLane& nl : lanes) {
      EncodedLane enc =
          EncodedLane::Build(nl.lane.data(), nl.lane.size(), block);
      uint64_t rows = nl.lane.size();
      std::vector<std::pair<uint64_t, uint64_t>> spans = {{0, rows}};
      for (int s = 0; s < 6 && rows > 0; ++s) {
        uint64_t a = rng.Uniform(0, rows - 1);
        uint64_t b = rng.Uniform(0, rows);
        spans.push_back({std::min(a, b), std::max(a, b)});
      }
      // ok tables: empty, full, one code, random.
      std::vector<std::vector<uint8_t>> tables;
      tables.emplace_back(num_codes, 0);
      tables.emplace_back(num_codes, 1);
      std::vector<uint8_t> one(num_codes, 0);
      one[17] = 1;
      tables.push_back(one);
      std::vector<uint8_t> rnd(num_codes);
      for (auto& x : rnd) x = rng.Uniform(0, 1);
      tables.push_back(rnd);
      for (auto [begin, end] : spans) {
        size_t n = end - begin;
        for (const std::vector<uint8_t>& ok : tables) {
          std::vector<uint8_t> init(n);
          for (size_t i = 0; i < n; ++i) init[i] = rng.Uniform(0, 1);
          std::vector<uint8_t> want = init;
          for (uint64_t i = begin; i < end; ++i) {
            want[i - begin] = want[i - begin] & ok[nl.lane[i]];
          }
          std::vector<uint8_t> got = init;
          Verdict v = enc.VerdictMask(nl.lane.data(), begin, end, ok.data(),
                                      num_codes, got.data());
          ASSERT_EQ(got, want) << nl.name << " block=" << block << " span=["
                               << begin << "," << end << ")";
          if (v == Verdict::kNonePass) {
            for (size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], 0);
          }
          if (v == Verdict::kAllPass) {
            for (size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], init[i]);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace compression
}  // namespace bdcc
