#include <numeric>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/compression/bitpack.h"
#include "storage/compression/codec.h"
#include "storage/compression/delta.h"
#include "storage/compression/rle.h"

namespace bdcc {
namespace compression {
namespace {

TEST(RleTest, RoundTrip) {
  std::vector<int32_t> input = {5, 5, 5, 7, 7, -1, -1, -1, -1, 0};
  auto encoded = RleEncode(input.data(), input.size());
  EXPECT_EQ(encoded.size(), RleEncodedSize(input.data(), input.size()));
  auto decoded = RleDecode(encoded.data(), encoded.size());
  EXPECT_EQ(decoded, input);
}

TEST(RleTest, CompressesRuns) {
  std::vector<int32_t> runs(10000, 42);
  EXPECT_EQ(RleEncodedSize(runs.data(), runs.size()), 8u);
  std::vector<int32_t> distinct(100);
  std::iota(distinct.begin(), distinct.end(), 0);
  EXPECT_EQ(RleEncodedSize(distinct.data(), distinct.size()), 800u);
}

TEST(DeltaTest, RoundTripSortedAndRandom) {
  Rng rng(3);
  std::vector<int64_t> sorted;
  int64_t at = -500;
  for (int i = 0; i < 5000; ++i) {
    at += rng.Uniform(0, 20);
    sorted.push_back(at);
  }
  auto enc = DeltaEncode(sorted.data(), sorted.size());
  EXPECT_EQ(enc.size(), DeltaEncodedSize(sorted.data(), sorted.size()));
  auto dec = DeltaDecode(enc.data(), enc.size(), sorted.size());
  EXPECT_EQ(dec, sorted);
  // Sorted data encodes near 1 byte per value.
  EXPECT_LT(enc.size(), sorted.size() * 2);

  std::vector<int64_t> random(1000);
  for (auto& v : random) v = static_cast<int64_t>(rng.Next64());
  auto enc2 = DeltaEncode(random.data(), random.size());
  auto dec2 = DeltaDecode(enc2.data(), enc2.size(), random.size());
  EXPECT_EQ(dec2, random);
}

TEST(BitPackTest, RoundTripAcrossWidths) {
  Rng rng(4);
  for (int width = 1; width <= 32; width += 3) {
    std::vector<uint32_t> input(500);
    for (auto& v : input) {
      v = static_cast<uint32_t>(rng.Next64() &
                                ((width == 32) ? 0xFFFFFFFFull
                                               : ((1ull << width) - 1)));
    }
    auto packed = BitPack(input.data(), input.size(), width);
    EXPECT_EQ(packed.size(), BitPackedSize(input.size(), width));
    auto unpacked = BitUnpack(packed.data(), packed.size(), input.size(),
                              width);
    EXPECT_EQ(unpacked, input) << "width " << width;
  }
}

TEST(BitPackTest, RequiredBitWidth) {
  std::vector<uint32_t> v = {0, 1, 7};
  EXPECT_EQ(RequiredBitWidth(v.data(), v.size()), 3);
  std::vector<uint32_t> zeros = {0, 0};
  EXPECT_EQ(RequiredBitWidth(zeros.data(), zeros.size()), 1);
}

TEST(CodecTest, PicksBestPerBlock) {
  // Runs -> RLE beats raw; sorted -> delta/bitpack beat raw.
  Column runs(TypeId::kInt32);
  for (int i = 0; i < 20000; ++i) runs.AppendInt32(i / 1000);
  auto est = EstimateCompression(runs);
  EXPECT_LT(est.compressed_bytes, est.raw_bytes / 10);
  EXPECT_GT(est.ratio(), 10.0);

  Column noise(TypeId::kFloat64);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) noise.AppendFloat64(rng.NextDouble());
  auto est2 = EstimateCompression(noise);
  EXPECT_EQ(est2.compressed_bytes, est2.raw_bytes);  // no float codec
}

TEST(CodecTest, StringColumnsAddDictionaryPayload) {
  Column s(TypeId::kString);
  for (int i = 0; i < 1000; ++i) s.AppendString(i % 2 ? "yes" : "no");
  auto est = EstimateCompression(s);
  // Codes are a 2-value alternation: RLE won't help, bitpack will (1 bit).
  EXPECT_LT(est.compressed_bytes, est.raw_bytes);
  EXPECT_GE(est.compressed_bytes, 5u);  // at least the dict payload
}

TEST(CodecTest, ClusteringImprovesCompressionProperty) {
  // The evaluation's storage argument: BDCC reordering keeps (or improves)
  // compressed size because clustered columns become locally homogeneous.
  Rng rng(6);
  Column random_col(TypeId::kInt32);
  std::vector<int32_t> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(static_cast<int32_t>(rng.Uniform(0, 31)));
  }
  for (int32_t v : values) random_col.AppendInt32(v);
  std::sort(values.begin(), values.end());
  Column clustered_col(TypeId::kInt32);
  for (int32_t v : values) clustered_col.AppendInt32(v);
  auto random_est = EstimateCompression(random_col);
  auto clustered_est = EstimateCompression(clustered_col);
  EXPECT_LT(clustered_est.compressed_bytes, random_est.compressed_bytes / 5);
}

}  // namespace
}  // namespace compression
}  // namespace bdcc
