// Columns, tables, dictionaries, values, dates, zone maps.
#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/table.h"
#include "storage/zonemap.h"

namespace bdcc {
namespace {

TEST(ValueTest, CompareNumericFamilies) {
  EXPECT_LT(Value::Int32(3).Compare(Value::Int64(5)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Float64(5.0)), 0);
  EXPECT_GT(Value::Float64(5.5).Compare(Value::Int32(5)), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_LT(Value::Date(100).Compare(Value::Date(200)), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Date(ParseDate("1995-06-17")).ToString(), "1995-06-17");
}

TEST(DateTest, RoundTripAndArithmetic) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(ParseDate("1992-01-01"), DaysFromCivil(1992, 1, 1));
  // TPC-H domain: 1992-01-01 .. 1998-12-31 spans 2557 days.
  EXPECT_EQ(ParseDate("1998-12-31") - ParseDate("1992-01-01"), 2556);
  for (const char* iso : {"1992-02-29", "1996-02-29", "1998-08-02",
                          "2000-12-31", "1970-01-01"}) {
    EXPECT_EQ(DateToString(ParseDate(iso)), iso);
  }
}

TEST(DictionaryTest, InternAndLookup) {
  Dictionary d;
  int32_t a = d.GetOrAdd("hello");
  int32_t b = d.GetOrAdd("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.GetOrAdd("hello"), a);
  EXPECT_EQ(d.Get(a), "hello");
  EXPECT_EQ(d.Find("world"), b);
  EXPECT_EQ(d.Find("absent"), -1);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.payload_bytes(), 10u);
}

TEST(DictionaryTest, LexRanks) {
  Dictionary d;
  d.GetOrAdd("zebra");
  d.GetOrAdd("apple");
  d.GetOrAdd("mango");
  const auto& ranks = d.LexRanks();
  EXPECT_EQ(ranks[0], 2);  // zebra last
  EXPECT_EQ(ranks[1], 0);  // apple first
  EXPECT_EQ(ranks[2], 1);
  d.GetOrAdd("aaa");  // invalidates; recomputed on demand
  EXPECT_EQ(d.LexRanks()[3], 0);
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column c(TypeId::kFloat64);
  c.AppendFloat64(1.5);
  c.AppendFloat64(-2.5);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.GetValue(1).AsDouble(), -2.5);

  Column s(TypeId::kString);
  s.AppendString("x");
  s.AppendString("y");
  s.AppendString("x");
  EXPECT_EQ(s.GetString(2), "x");
  EXPECT_EQ(s.i32()[0], s.i32()[2]);

  Column d(TypeId::kDate);
  d.AppendDate(ParseDate("1994-01-01"));
  EXPECT_EQ(d.GetValue(0).ToString(), "1994-01-01");
}

TEST(ColumnTest, DiskBytesAccounting) {
  Column i(TypeId::kInt32);
  for (int k = 0; k < 100; ++k) i.AppendInt32(k);
  EXPECT_EQ(i.DiskBytes(), 400u);
  Column s(TypeId::kString);
  s.AppendString("abcd");
  s.AppendString("abcd");
  EXPECT_EQ(s.DiskBytes(), 2 * 4 + 4u);  // codes + payload once
}

TEST(ColumnTest, GatherReordersAndRebuildsDictionary) {
  Column s(TypeId::kString);
  s.AppendString("a");
  s.AppendString("b");
  s.AppendString("c");
  Column g = s.Gather({2, 0, 1});
  EXPECT_EQ(g.GetString(0), "c");
  EXPECT_EQ(g.GetString(1), "a");
  EXPECT_EQ(g.GetString(2), "b");
  // Dictionary rebuilt in first-occurrence order (payload locality).
  EXPECT_EQ(g.i32()[0], 0);
  EXPECT_NE(g.dict().get(), s.dict().get());
}

TEST(TableTest, AddColumnValidations) {
  Table t("T");
  Column a(TypeId::kInt32);
  a.AppendInt32(1);
  ASSERT_TRUE(t.AddColumn("a", std::move(a)).ok());
  Column dup(TypeId::kInt32);
  dup.AppendInt32(2);
  EXPECT_EQ(t.AddColumn("a", std::move(dup)).code(),
            StatusCode::kAlreadyExists);
  Column wrong_len(TypeId::kInt32);
  wrong_len.AppendInt32(1);
  wrong_len.AppendInt32(2);
  EXPECT_FALSE(t.AddColumn("b", std::move(wrong_len)).ok());
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.ColumnIndex("zz").ok());
}

TEST(TableTest, PermutationAndClone) {
  Table t("T");
  Column a(TypeId::kInt32), s(TypeId::kString);
  for (int i = 0; i < 4; ++i) {
    a.AppendInt32(i);
    s.AppendString(std::string(1, static_cast<char>('a' + i)));
  }
  ASSERT_TRUE(t.AddColumn("a", std::move(a)).ok());
  ASSERT_TRUE(t.AddColumn("s", std::move(s)).ok());
  Table p = t.ApplyPermutation({3, 2, 1, 0});
  EXPECT_EQ(p.column(0).i32()[0], 3);
  EXPECT_EQ(p.column(1).GetValue(0).AsString(), "d");
  Table c = t.Clone();
  EXPECT_EQ(c.num_rows(), 4u);
  EXPECT_EQ(c.column(0).i32()[2], 2);
}

TEST(TableTest, AppendRowsFrom) {
  Table t("T");
  Column a(TypeId::kInt64);
  for (int i = 0; i < 5; ++i) a.AppendInt64(i * 10);
  ASSERT_TRUE(t.AddColumn("a", std::move(a)).ok());
  t.AppendRowsFrom(t, 1, 3);  // self-append is allowed
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.column(0).i64()[5], 10);
  EXPECT_EQ(t.column(0).i64()[6], 20);
}

TEST(ZoneMapTest, BuildAndPrune) {
  Column c(TypeId::kInt32);
  for (int i = 0; i < 100; ++i) c.AppendInt32(i);
  ZoneMap zm = ZoneMap::Build(c, 10);
  EXPECT_EQ(zm.num_zones(), 10u);
  EXPECT_EQ(zm.ZoneMin(3).AsInt64(), 30);
  EXPECT_EQ(zm.ZoneMax(3).AsInt64(), 39);
  ValueRange r;
  r.lo = Value::Int32(35);
  r.hi = Value::Int32(36);
  EXPECT_TRUE(zm.MayMatch(3, r));
  EXPECT_FALSE(zm.MayMatch(2, r));
  EXPECT_FALSE(zm.MayMatch(4, r));
  ValueRange unbounded;
  EXPECT_TRUE(zm.MayMatch(0, unbounded));
}

TEST(ZoneMapTest, StringsAndPartialZones) {
  Column c(TypeId::kString);
  for (const char* v : {"apple", "pear", "fig"}) c.AppendString(v);
  ZoneMap zm = ZoneMap::Build(c, 2);
  EXPECT_EQ(zm.num_zones(), 2u);
  EXPECT_EQ(zm.ZoneMin(0).AsString(), "apple");
  EXPECT_EQ(zm.ZoneMax(0).AsString(), "pear");
  EXPECT_EQ(zm.ZoneMin(1).AsString(), "fig");
  ValueRange r;
  r.lo = Value::String("aaa");
  r.hi = Value::String("b");
  EXPECT_TRUE(zm.MayMatch(0, r));
  EXPECT_FALSE(zm.MayMatch(1, r));
}

TEST(ZoneMapTest, ClusteringMakesZonesSelectiveProperty) {
  // The paper's MinMax argument: same data, clustered vs random order.
  Rng rng(8);
  std::vector<int32_t> values(10000);
  for (auto& v : values) v = static_cast<int32_t>(rng.Uniform(0, 9999));
  Column random_col(TypeId::kInt32);
  for (int32_t v : values) random_col.AppendInt32(v);
  std::sort(values.begin(), values.end());
  Column sorted_col(TypeId::kInt32);
  for (int32_t v : values) sorted_col.AppendInt32(v);

  ZoneMap zr = ZoneMap::Build(random_col, 100);
  ZoneMap zs = ZoneMap::Build(sorted_col, 100);
  ValueRange r;
  r.lo = Value::Int32(1000);
  r.hi = Value::Int32(1999);
  int random_hits = 0, sorted_hits = 0;
  for (uint64_t z = 0; z < zr.num_zones(); ++z) {
    random_hits += zr.MayMatch(z, r);
    sorted_hits += zs.MayMatch(z, r);
  }
  EXPECT_EQ(random_hits, 100);       // random order: every zone matches
  EXPECT_LT(sorted_hits, 15);        // clustered: ~10% of zones
}

}  // namespace
}  // namespace bdcc
