// Insert maintenance: appended tuples merge into the clustered order and
// the result is indistinguishable from rebuilding from scratch.
#include "bdcc/append.h"

#include "bdcc/binning.h"
#include "bdcc/scatter_scan.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

class AppendFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.AddTable({"DIM", {{"d_key", TypeId::kInt32}}, {"d_key"}})
        .AbortIfNotOK();
    catalog_
        .AddTable({"F",
                   {{"f_d", TypeId::kInt32}, {"f_payload", TypeId::kInt64}},
                   {}})
        .AbortIfNotOK();
    catalog_.AddForeignKey({"FK_F_D", "F", {"f_d"}, "DIM", {"d_key"}})
        .AbortIfNotOK();
    Table dim("DIM");
    Column dk(TypeId::kInt32);
    for (int i = 0; i < 64; ++i) dk.AppendInt32(i);
    dim.AddColumn("d_key", std::move(dk)).AbortIfNotOK();
    tables_.emplace("DIM", std::move(dim));

    tables_.emplace("F", MakeRows(0, 5000));
    dimension_ = std::make_shared<const Dimension>(
        binning::CreateRangeDimension("D", "DIM", "d_key", 0, 63, 6)
            .ValueOrDie());
  }

  Table MakeRows(int64_t seed, int n) {
    Rng rng(100 + seed);
    Table f("F");
    Column fd(TypeId::kInt32), payload(TypeId::kInt64);
    for (int i = 0; i < n; ++i) {
      fd.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 63)));
      payload.AppendInt64(seed * 1000000 + i);
    }
    f.AddColumn("f_d", std::move(fd)).AbortIfNotOK();
    f.AddColumn("f_payload", std::move(payload)).AbortIfNotOK();
    return f;
  }

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* t,
             const catalog::Catalog* c)
        : t_(t), c_(c) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = t_->find(name);
      if (it == t_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return c_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* t_;
    const catalog::Catalog* c_;
  };

  BdccTable Build(const Table& source) {
    std::vector<DimensionUse> uses(1);
    uses[0].dimension = dimension_;
    uses[0].path.fk_ids = {"FK_F_D"};
    Resolver resolver(&tables_, &catalog_);
    BdccBuildOptions options;
    options.tuning.efficient_access_bytes = 256;
    return BuildBdccTable(source.Clone(), uses, resolver, options)
        .ValueOrDie();
  }

  catalog::Catalog catalog_;
  std::map<std::string, Table> tables_;
  DimensionPtr dimension_;
};

TEST_F(AppendFixture, MergedTableStaysSortedAndCounted) {
  BdccTable table = Build(tables_.at("F"));
  uint64_t before = table.logical_rows();
  Table extra = MakeRows(7, 1200);
  Resolver resolver(&tables_, &catalog_);
  AppendStats stats =
      AppendToBdccTable(&table, extra, resolver).ValueOrDie();
  EXPECT_EQ(stats.rows_appended, 1200u);
  EXPECT_GE(stats.groups_after, stats.groups_before);
  EXPECT_EQ(table.logical_rows(), before + 1200);
  // Sorted on the key.
  const auto& keys = table.data().column(table.bdcc_column_index()).i64();
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LE(keys[i - 1], keys[i]);
  }
  // Count table covers everything.
  uint64_t covered = 0;
  for (const GroupRange& r : PlanNaturalScan(table)) {
    covered += r.row_end - r.row_begin;
  }
  EXPECT_EQ(covered, before + 1200);
}

TEST_F(AppendFixture, AppendEquivalentToRebuild) {
  BdccTable incremental = Build(tables_.at("F"));
  Table extra = MakeRows(9, 800);
  Resolver resolver(&tables_, &catalog_);
  ASSERT_TRUE(AppendToBdccTable(&incremental, extra, resolver).ok());

  Table all = tables_.at("F").Clone();
  all.AppendRowsFrom(extra, 0, extra.num_rows());
  BdccTable rebuilt = Build(all);

  ASSERT_EQ(incremental.logical_rows(), rebuilt.logical_rows());
  // Same keys in the same order (stable merge == stable sort of the union
  // when appended rows come last, as here).
  const auto& ka = incremental.data().column(incremental.bdcc_column_index()).i64();
  const auto& kb = rebuilt.data().column(rebuilt.bdcc_column_index()).i64();
  EXPECT_EQ(ka, kb);
  // Same per-group payload multisets: compare sorted payload within groups.
  const auto& pa = incremental.data().ColumnByName("f_payload").i64();
  const auto& pb = rebuilt.data().ColumnByName("f_payload").i64();
  std::vector<int64_t> sa(pa), sb(pb);
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST_F(AppendFixture, ValidatesInputs) {
  BdccTable table = Build(tables_.at("F"));
  Resolver resolver(&tables_, &catalog_);
  // Wrong name: dimension paths can't anchor.
  Table wrong("NOT_F");
  Column a(TypeId::kInt32), b(TypeId::kInt64);
  a.AppendInt32(1);
  b.AppendInt64(1);
  wrong.AddColumn("f_d", std::move(a)).AbortIfNotOK();
  wrong.AddColumn("f_payload", std::move(b)).AbortIfNotOK();
  EXPECT_FALSE(AppendToBdccTable(&table, wrong, resolver).ok());
  // Wrong schema width.
  Table narrow("F");
  Column c(TypeId::kInt32);
  c.AppendInt32(1);
  narrow.AddColumn("f_d", std::move(c)).AbortIfNotOK();
  EXPECT_FALSE(AppendToBdccTable(&table, narrow, resolver).ok());
  // Empty append is a no-op.
  Table empty = MakeRows(1, 0);
  AppendStats stats = AppendToBdccTable(&table, empty, resolver).ValueOrDie();
  EXPECT_EQ(stats.rows_appended, 0u);
}

TEST_F(AppendFixture, RepeatedAppendsAccumulate) {
  BdccTable table = Build(tables_.at("F"));
  Resolver resolver(&tables_, &catalog_);
  uint64_t expect = table.logical_rows();
  for (int round = 0; round < 5; ++round) {
    Table extra = MakeRows(20 + round, 300);
    ASSERT_TRUE(AppendToBdccTable(&table, extra, resolver).ok());
    expect += 300;
    EXPECT_EQ(table.logical_rows(), expect);
  }
  // Groups never exceed the count-granularity bound.
  EXPECT_LE(table.count_table().num_groups(),
            uint64_t{1} << table.count_bits());
}

}  // namespace
}  // namespace bdcc
