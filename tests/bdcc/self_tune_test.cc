// Algorithm 1 step (iii): granularity choice against AR.
#include "bdcc/self_tune.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

Table MakeTable(uint64_t rows, int payload_width) {
  Table t("T");
  Column id(TypeId::kInt64), payload(TypeId::kString);
  Rng rng(1);
  std::string wide(payload_width, 'x');
  for (uint64_t i = 0; i < rows; ++i) {
    id.AppendInt64(static_cast<int64_t>(i));
    // Distinct payloads so dictionary bytes scale with rows.
    payload.AppendString(wide + std::to_string(i));
  }
  t.AddColumn("id", std::move(id)).AbortIfNotOK();
  t.AddColumn("payload", std::move(payload)).AbortIfNotOK();
  return t;
}

TEST(SelfTuneTest, DensestColumnFound) {
  Table t = MakeTable(1000, 50);
  std::string name;
  double density = DensestColumnBytesPerRow(t, &name);
  EXPECT_EQ(name, "payload");
  EXPECT_GT(density, 50.0);
}

TEST(SelfTuneTest, UniformGroupsChooseLog2Pages) {
  // 2^14 rows uniformly over 14 bits of key; density d bytes/row; with
  // AR = d * 2^4 bytes, groups of >= 16 rows qualify -> b = 10.
  uint64_t rows = 1 << 14;
  std::vector<uint64_t> keys(rows);
  for (uint64_t i = 0; i < rows; ++i) keys[i] = i;  // every group size 1@14
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 14);
  Table t = MakeTable(rows, 48);
  double density = DensestColumnBytesPerRow(t, nullptr);
  SelfTuneOptions options;
  options.efficient_access_bytes =
      static_cast<uint64_t>(density * 16);
  SelfTuneDecision d = ChooseCountGranularity(an, t, options);
  EXPECT_EQ(d.chosen_bits, 10);
  EXPECT_EQ(d.min_rows_per_group, 16u);
}

TEST(SelfTuneTest, TinyArKeepsFullGranularity) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 256; ++i) {
    keys.push_back(i);
    keys.push_back(i);
  }
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 8);
  Table t = MakeTable(512, 10);
  SelfTuneOptions options;
  options.efficient_access_bytes = 1;
  SelfTuneDecision d = ChooseCountGranularity(an, t, options);
  EXPECT_EQ(d.chosen_bits, 8);
}

TEST(SelfTuneTest, HugeArFallsBackToZero) {
  std::vector<uint64_t> keys = {0, 1, 2, 3};
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 2);
  Table t = MakeTable(4, 10);
  SelfTuneOptions options;
  options.efficient_access_bytes = 1ull << 30;
  SelfTuneDecision d = ChooseCountGranularity(an, t, options);
  EXPECT_EQ(d.chosen_bits, 0);
}

TEST(SelfTuneTest, SkewToleratedByTupleWeighting) {
  // One giant group plus dust: the fraction is tuple-weighted, so the dust
  // cannot veto a fine granularity as long as most *data* is in large
  // groups.
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(0);  // giant group
  for (uint64_t g = 1; g < 64; ++g) keys.push_back(g);  // 63 singletons
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 6);
  Table t = MakeTable(keys.size(), 48);
  double density = DensestColumnBytesPerRow(t, nullptr);
  SelfTuneOptions options;
  options.efficient_access_bytes = static_cast<uint64_t>(density * 100);
  options.min_group_fraction = 0.8;
  SelfTuneDecision d = ChooseCountGranularity(an, t, options);
  // >99% of tuples live in the giant group at any granularity.
  EXPECT_EQ(d.chosen_bits, 6);
}

TEST(SelfTuneTest, FractionDiagnosticsMonotone) {
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next64() & 0xFF);
  std::sort(keys.begin(), keys.end());
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 8);
  Table t = MakeTable(5000, 20);
  SelfTuneOptions options;
  options.efficient_access_bytes = 512;
  SelfTuneDecision d = ChooseCountGranularity(an, t, options);
  // Coarser granularities can only increase the qualifying fraction.
  for (size_t b = 1; b < d.fraction_by_bits.size(); ++b) {
    EXPECT_GE(d.fraction_by_bits[b - 1] + 1e-9, d.fraction_by_bits[b]);
  }
}

}  // namespace
}  // namespace bdcc
