#include "bdcc/binning.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace binning {
namespace {

std::vector<ValueFrequency> IntValues(std::vector<std::pair<int64_t, uint64_t>> v) {
  std::vector<ValueFrequency> out;
  for (auto [val, count] : v) {
    out.push_back(ValueFrequency{{Value::Int64(val)}, count});
  }
  return out;
}

TEST(BinningTest, ChooseBits) {
  BinningOptions opts;
  opts.max_bits = 13;
  EXPECT_EQ(ChooseBits(1, opts), 0);
  EXPECT_EQ(ChooseBits(2, opts), 1);
  EXPECT_EQ(ChooseBits(25, opts), 5);    // D_NATION: 25 nations -> 5 bits
  EXPECT_EQ(ChooseBits(100000, opts), 13);  // capped
  opts.headroom_bits = 1;
  EXPECT_EQ(ChooseBits(2406, opts), 13);  // D_DATE: 2406 days + headroom
  EXPECT_EQ(ChooseBits(25, opts), 6);
}

TEST(BinningTest, UniqueBinsWhenDomainFits) {
  auto dim = CreateDimension("D", "T", {"k"},
                             IntValues({{1, 5}, {7, 1}, {9, 3}}), {})
                 .ValueOrDie();
  EXPECT_EQ(dim.num_bins(), 3u);
  EXPECT_EQ(dim.bits(), 2);
  for (size_t i = 0; i < dim.num_bins(); ++i) {
    EXPECT_TRUE(dim.bin(i).unique);
  }
  EXPECT_EQ(dim.BinOf({Value::Int64(7)}), dim.bin(1).number);
}

TEST(BinningTest, RejectsUnsortedValues) {
  EXPECT_FALSE(
      CreateDimension("D", "T", {"k"}, IntValues({{9, 1}, {1, 1}}), {}).ok());
  EXPECT_FALSE(
      CreateDimension("D", "T", {"k"}, IntValues({{1, 1}, {1, 1}}), {}).ok());
  EXPECT_FALSE(CreateDimension("D", "T", {"k"}, {}, {}).ok());
}

TEST(BinningTest, EqualFrequencyBinning) {
  // 1000 distinct values, cap at 4 bits -> 16 bins of ~equal mass.
  std::vector<ValueFrequency> values;
  Rng rng(5);
  uint64_t total = 0;
  for (int64_t v = 0; v < 1000; ++v) {
    uint64_t c = static_cast<uint64_t>(rng.Uniform(1, 20));
    values.push_back(ValueFrequency{{Value::Int64(v)}, c});
    total += c;
  }
  BinningOptions opts;
  opts.max_bits = 4;
  auto dim = CreateDimension("D", "T", {"k"}, values, opts).ValueOrDie();
  EXPECT_EQ(dim.num_bins(), 16u);
  EXPECT_EQ(dim.bits(), 4);

  // Bin masses within 2x of the ideal share (allowing value granularity).
  std::vector<uint64_t> mass(16, 0);
  for (const ValueFrequency& v : values) {
    mass[dim.OrdinalOfBinNumber(dim.BinOf(v.value))] += v.count;
  }
  double ideal = static_cast<double>(total) / 16.0;
  for (int b = 0; b < 16; ++b) {
    EXPECT_GT(mass[b], 0u) << "empty bin " << b;
    EXPECT_LT(static_cast<double>(mass[b]), 2.0 * ideal) << "bin " << b;
  }
}

TEST(BinningTest, EqualFrequencyHandlesHeavySkew) {
  // One value holds 90% of the mass: it must own a bin without starving
  // the others.
  std::vector<ValueFrequency> values;
  for (int64_t v = 0; v < 100; ++v) {
    values.push_back(ValueFrequency{{Value::Int64(v)}, v == 50 ? 9000u : 10u});
  }
  BinningOptions opts;
  opts.max_bits = 3;
  auto dim = CreateDimension("D", "T", {"k"}, values, opts).ValueOrDie();
  EXPECT_EQ(dim.num_bins(), 8u);
  // Every value still maps to a bin; bins ascend.
  uint64_t prev = 0;
  for (int64_t v = 0; v < 100; ++v) {
    uint64_t b = dim.BinOf({Value::Int64(v)});
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BinningTest, SpreadNumbersCoverFullRangeProperty) {
  // Bin numbers spread across 2^bits so D|g reduction stays balanced.
  std::vector<ValueFrequency> values;
  for (int64_t v = 0; v < 173; ++v) {
    values.push_back(ValueFrequency{{Value::Int64(v)}, 1});
  }
  auto dim = CreateDimension("D", "T", {"k"}, values, {}).ValueOrDie();
  EXPECT_EQ(dim.bits(), 8);
  // First bin number 0; last close to 2^8.
  EXPECT_EQ(dim.bin(0).number, 0u);
  EXPECT_GE(dim.bin(dim.num_bins() - 1).number, 250u);
}

TEST(BinningTest, RangeDimension) {
  auto dim = CreateRangeDimension("D", "T", "v", 0, 99, 2).ValueOrDie();
  EXPECT_EQ(dim.num_bins(), 4u);
  EXPECT_EQ(dim.BinOfInt(0), 0u);
  EXPECT_EQ(dim.BinOfInt(24), 0u);
  EXPECT_EQ(dim.BinOfInt(25), 1u);
  EXPECT_EQ(dim.BinOfInt(99), 3u);
}

TEST(BinningTest, RangeDimensionSmallDomain) {
  // Domain smaller than 2^bits: one bin per value.
  auto dim = CreateRangeDimension("D", "T", "v", 0, 2, 4).ValueOrDie();
  EXPECT_EQ(dim.num_bins(), 3u);
  EXPECT_FALSE(CreateRangeDimension("D", "T", "v", 5, 4, 2).ok());
  EXPECT_FALSE(CreateRangeDimension("D", "T", "v", 0, 9, 0).ok());
}

// Parameterized: binning invariants hold across widths and skews.
class BinningPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BinningPropertyTest, DefinitionOneInvariants) {
  auto [max_bits, skew] = GetParam();
  Rng rng(42 + max_bits * 10 + skew);
  std::vector<ValueFrequency> values;
  for (int64_t v = 0; v < 500; ++v) {
    uint64_t c = 1 + static_cast<uint64_t>(rng.NextDouble() *
                                           (skew == 0 ? 10 : 1000 * skew));
    values.push_back(ValueFrequency{{Value::Int64(v * 3)}, c});
  }
  BinningOptions opts;
  opts.max_bits = max_bits;
  auto dim = CreateDimension("D", "T", {"k"}, values, opts).ValueOrDie();
  // (i) numbers ascend, (iii) boundaries ascend (checked in ctor), and
  // every input value maps into a bin whose boundary is >= the value.
  for (const ValueFrequency& v : values) {
    uint64_t bin = dim.BinOf(v.value);
    size_t ord = dim.OrdinalOfBinNumber(bin);
    EXPECT_LE(CompareComposite(v.value, dim.bin(ord).max_incl), 0);
    if (ord > 0) {
      EXPECT_GT(CompareComposite(v.value, dim.bin(ord - 1).max_incl), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinningPropertyTest,
                         ::testing::Combine(::testing::Values(3, 6, 9, 13),
                                            ::testing::Values(0, 1, 5)));

}  // namespace
}  // namespace binning
}  // namespace bdcc
