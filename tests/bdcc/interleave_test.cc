#include "bdcc/interleave.h"

#include "common/bits.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace interleave {
namespace {

std::string Mask(const InterleaveSpec& spec, size_t i) {
  return bits::FormatMask(spec.masks[i], spec.total_bits);
}

TEST(InterleaveTest, SingleUse) {
  auto spec = BuildMasks({5}, Policy::kRoundRobinPerUse).ValueOrDie();
  EXPECT_EQ(spec.total_bits, 5);
  EXPECT_EQ(Mask(spec, 0), "11111");
}

TEST(InterleaveTest, PaperOrdersMasks) {
  // ORDERS: D_DATE (13 bits) + D_NATION (5 bits) -> the paper's strings.
  auto spec = BuildMasks({13, 5}, Policy::kRoundRobinPerUse).ValueOrDie();
  EXPECT_EQ(spec.total_bits, 18);
  EXPECT_EQ(Mask(spec, 0), "101010101011111111");
  EXPECT_EQ(Mask(spec, 1), "010101010100000000");
}

TEST(InterleaveTest, PaperLineitemMasksAfterReduction) {
  // LINEITEM: D_DATE(13), D_NATION_cust(5), D_NATION_supp(5), D_PART(13);
  // full B=36 reduced to the paper's 20-bit granularity -> 5 bits each,
  // perfectly interleaved.
  auto spec =
      BuildMasks({13, 5, 5, 13}, Policy::kRoundRobinPerUse).ValueOrDie();
  EXPECT_EQ(spec.total_bits, 36);
  auto reduced = Reduce(spec, 20);
  EXPECT_EQ(Mask(reduced, 0), "10001000100010001000");
  EXPECT_EQ(Mask(reduced, 1), "01000100010001000100");
  EXPECT_EQ(Mask(reduced, 2), "00100010001000100010");
  EXPECT_EQ(Mask(reduced, 3), "00010001000100010001");
}

TEST(InterleaveTest, MasksAreDisjointAndComplete) {
  for (auto policy : {Policy::kRoundRobinPerUse, Policy::kMajorMinor}) {
    auto spec = BuildMasks({13, 5, 5, 13}, policy).ValueOrDie();
    uint64_t all = 0;
    for (uint64_t m : spec.masks) {
      EXPECT_EQ(all & m, 0u) << PolicyName(policy);  // (ii) no overlap
      all |= m;
    }
    EXPECT_EQ(all, bits::LowMask(spec.total_bits));  // (i) all bits set
  }
}

TEST(InterleaveTest, MajorMinor) {
  auto spec = BuildMasks({3, 2}, Policy::kMajorMinor).ValueOrDie();
  EXPECT_EQ(Mask(spec, 0), "11100");
  EXPECT_EQ(Mask(spec, 1), "00011");
}

TEST(InterleaveTest, PerForeignKeyPolicy) {
  // Uses 0 and 1 share FK group 0 (like D_DATE/D_NATION via FK_L_O);
  // use 2 is its own group. The shared group's bit stream alternates
  // between its members.
  auto spec = BuildMasks({4, 4, 4}, Policy::kRoundRobinPerForeignKey,
                         {0, 0, 1})
                  .ValueOrDie();
  EXPECT_EQ(spec.total_bits, 12);
  // Each round gives one bit per FK group; the shared group alternates its
  // members, so use2 (alone in its group) exhausts first, then uses 0/1
  // keep alternating: use0 bits at 11,7,3,1; use1 at 9,5,2,0; use2 at
  // 10,8,6,4.
  EXPECT_EQ(Mask(spec, 0), "100010001010");
  EXPECT_EQ(Mask(spec, 1), "001000100101");
  EXPECT_EQ(Mask(spec, 2), "010101010000");
}

TEST(InterleaveTest, PerFkRequiresGroups) {
  EXPECT_FALSE(BuildMasks({4, 4}, Policy::kRoundRobinPerForeignKey, {}).ok());
}

TEST(InterleaveTest, RejectsBadInputs) {
  EXPECT_FALSE(BuildMasks({}, Policy::kRoundRobinPerUse).ok());
  EXPECT_FALSE(BuildMasks({0}, Policy::kRoundRobinPerUse).ok());
  EXPECT_FALSE(BuildMasks({40, 30}, Policy::kRoundRobinPerUse).ok());
}

TEST(InterleaveTest, ComposeKeyFigure1Example) {
  // Figure 1 table C: D1 (2 bits) at positions 3,1; D3 (2 bits) at 2,0.
  InterleaveSpec spec;
  spec.total_bits = 4;
  spec.masks = {0b1010, 0b0101};
  int dim_bits[2] = {2, 2};
  // D1 bin 0b10 (Asia), D3 bin 0b01 -> key 1001? D1 major bit=1 at pos 3,
  // minor=0 at pos 1; D3 major=0 at pos 2, minor=1 at pos 0 -> 1001.
  uint64_t bins[2] = {0b10, 0b01};
  EXPECT_EQ(ComposeKey(bins, dim_bits, spec), 0b1001u);
}

TEST(InterleaveTest, ComposeExtractRoundTripProperty) {
  Rng rng(77);
  std::vector<int> use_bits = {13, 5, 5, 13};
  auto spec = BuildMasks(use_bits, Policy::kRoundRobinPerUse).ValueOrDie();
  for (int trial = 0; trial < 300; ++trial) {
    uint64_t bins[4];
    for (int u = 0; u < 4; ++u) {
      bins[u] = rng.Next64() & bits::LowMask(use_bits[u]);
    }
    uint64_t key = ComposeKey(bins, use_bits.data(), spec);
    for (int u = 0; u < 4; ++u) {
      // Extracting a use's bits returns the bin number's full prefix (all
      // bits were assigned at full granularity).
      EXPECT_EQ(ExtractUseBits(key, spec.masks[u]), bins[u]);
    }
  }
}

TEST(InterleaveTest, ReducedKeyKeepsTopBitsProperty) {
  Rng rng(78);
  std::vector<int> use_bits = {8, 8};
  auto spec = BuildMasks(use_bits, Policy::kRoundRobinPerUse).ValueOrDie();
  auto reduced = Reduce(spec, 6);
  for (int trial = 0; trial < 300; ++trial) {
    uint64_t bins[2] = {rng.Next64() & 0xFF, rng.Next64() & 0xFF};
    uint64_t key = ComposeKey(bins, use_bits.data(), spec);
    // The reduced key is the top bits of the full key.
    uint64_t reduced_key = key >> (spec.total_bits - reduced.total_bits);
    for (int u = 0; u < 2; ++u) {
      uint64_t prefix = ExtractUseBits(reduced_key, reduced.masks[u]);
      int kept = bits::Ones(reduced.masks[u]);
      EXPECT_EQ(prefix, bins[u] >> (use_bits[u] - kept));
    }
  }
}

}  // namespace
}  // namespace interleave
}  // namespace bdcc
