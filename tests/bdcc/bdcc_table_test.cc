// End-to-end BDCC table construction on the paper's Figure 1 schema:
// dimensions D1 (geography), D2 (years), D3 (range bins); tables A (D1,D2),
// C (D1,D3), B co-clustered with A and C over FKs.
#include "bdcc/bdcc_table.h"

#include "bdcc/binning.h"
#include "bdcc/scatter_scan.h"
#include "bdcc/self_tune.h"
#include "bdcc/small_groups.h"
#include "catalog/catalog.h"
#include "common/bits.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

class Figure1Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Dimension host tables.
    {
      Table dim1("DIM1");
      Column k(TypeId::kInt32), name(TypeId::kString);
      const char* continents[] = {"Africa", "America", "Asia", "Europe"};
      for (int i = 0; i < 4; ++i) {
        k.AppendInt32(i);
        name.AppendString(continents[i]);
      }
      ASSERT_TRUE(dim1.AddColumn("d1_key", std::move(k)).ok());
      ASSERT_TRUE(dim1.AddColumn("d1_name", std::move(name)).ok());
      tables_.emplace("DIM1", std::move(dim1));
    }
    {
      Table dim2("DIM2");
      Column k(TypeId::kInt32), year(TypeId::kInt32);
      for (int i = 0; i < 4; ++i) {
        k.AppendInt32(i);
        year.AppendInt32(1997 + i);
      }
      ASSERT_TRUE(dim2.AddColumn("d2_key", std::move(k)).ok());
      ASSERT_TRUE(dim2.AddColumn("d2_year", std::move(year)).ok());
      tables_.emplace("DIM2", std::move(dim2));
    }
    // Fact table A(d1 FK, d2 FK, payload).
    {
      Rng rng(21);
      Table a("A");
      Column a_key(TypeId::kInt32), fk1(TypeId::kInt32), fk2(TypeId::kInt32),
          payload(TypeId::kFloat64);
      for (int i = 0; i < 4000; ++i) {
        a_key.AppendInt32(i);
        fk1.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 3)));
        fk2.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 3)));
        payload.AppendFloat64(rng.NextDouble());
      }
      ASSERT_TRUE(a.AddColumn("a_key", std::move(a_key)).ok());
      ASSERT_TRUE(a.AddColumn("a_d1", std::move(fk1)).ok());
      ASSERT_TRUE(a.AddColumn("a_d2", std::move(fk2)).ok());
      ASSERT_TRUE(a.AddColumn("a_payload", std::move(payload)).ok());
      tables_.emplace("A", std::move(a));
    }
    // Fact table B -> A (co-clustered transitively on D1, D2).
    {
      Rng rng(22);
      Table b("B");
      Column fk(TypeId::kInt32), payload(TypeId::kInt64);
      for (int i = 0; i < 16000; ++i) {
        fk.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 3999)));
        payload.AppendInt64(i);
      }
      ASSERT_TRUE(b.AddColumn("b_a", std::move(fk)).ok());
      ASSERT_TRUE(b.AddColumn("b_payload", std::move(payload)).ok());
      tables_.emplace("B", std::move(b));
    }

    ASSERT_TRUE(catalog_
                    .AddTable({"DIM1",
                               {{"d1_key", TypeId::kInt32},
                                {"d1_name", TypeId::kString}},
                               {"d1_key"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable({"DIM2",
                               {{"d2_key", TypeId::kInt32},
                                {"d2_year", TypeId::kInt32}},
                               {"d2_key"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable({"A",
                               {{"a_key", TypeId::kInt32},
                                {"a_d1", TypeId::kInt32},
                                {"a_d2", TypeId::kInt32},
                                {"a_payload", TypeId::kFloat64}},
                               {"a_key"}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable({"B",
                               {{"b_a", TypeId::kInt32},
                                {"b_payload", TypeId::kInt64}},
                               {}})
                    .ok());
    ASSERT_TRUE(
        catalog_.AddForeignKey({"FK_A_D1", "A", {"a_d1"}, "DIM1", {"d1_key"}})
            .ok());
    ASSERT_TRUE(
        catalog_.AddForeignKey({"FK_A_D2", "A", {"a_d2"}, "DIM2", {"d2_key"}})
            .ok());
    ASSERT_TRUE(
        catalog_.AddForeignKey({"FK_B_A", "B", {"b_a"}, "A", {"a_key"}}).ok());

    d1_ = std::make_shared<const Dimension>(
        binning::CreateRangeDimension("D1", "DIM1", "d1_key", 0, 3, 2)
            .ValueOrDie());
    d2_ = std::make_shared<const Dimension>(
        binning::CreateRangeDimension("D2", "DIM2", "d2_key", 0, 3, 2)
            .ValueOrDie());
  }

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* t,
             const catalog::Catalog* c)
        : t_(t), c_(c) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = t_->find(name);
      if (it == t_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return c_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* t_;
    const catalog::Catalog* c_;
  };

  Result<BdccTable> BuildA() {
    std::vector<DimensionUse> uses(2);
    uses[0].dimension = d1_;
    uses[0].path.fk_ids = {"FK_A_D1"};
    uses[1].dimension = d2_;
    uses[1].path.fk_ids = {"FK_A_D2"};
    Resolver resolver(&tables_, &catalog_);
    return BuildBdccTable(tables_.at("A").Clone(), uses, resolver, options_);
  }

  Result<BdccTable> BuildB() {
    std::vector<DimensionUse> uses(2);
    uses[0].dimension = d1_;
    uses[0].path.fk_ids = {"FK_B_A", "FK_A_D1"};
    uses[1].dimension = d2_;
    uses[1].path.fk_ids = {"FK_B_A", "FK_A_D2"};
    Resolver resolver(&tables_, &catalog_);
    return BuildBdccTable(tables_.at("B").Clone(), uses, resolver, options_);
  }

  std::map<std::string, Table> tables_;
  catalog::Catalog catalog_;
  DimensionPtr d1_, d2_;
  BdccBuildOptions options_ = [] {
    BdccBuildOptions o;
    // Small AR so the toy tables keep a meaningful count granularity.
    o.tuning.efficient_access_bytes = 512;
    return o;
  }();
};

TEST_F(Figure1Fixture, ComputeBinColumnLocalFk) {
  DimensionUse use;
  use.dimension = d1_;
  use.path.fk_ids = {"FK_A_D1"};
  Resolver resolver(&tables_, &catalog_);
  auto bins = ComputeBinColumn(tables_.at("A"), use, resolver).ValueOrDie();
  const Table& a = tables_.at("A");
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(bins[r],
              static_cast<uint64_t>(a.ColumnByName("a_d1").i32()[r]));
  }
}

TEST_F(Figure1Fixture, ComputeBinColumnTwoHopPath) {
  DimensionUse use;
  use.dimension = d1_;
  use.path.fk_ids = {"FK_B_A", "FK_A_D1"};
  Resolver resolver(&tables_, &catalog_);
  auto bins = ComputeBinColumn(tables_.at("B"), use, resolver).ValueOrDie();
  const Table& a = tables_.at("A");
  const Table& b = tables_.at("B");
  for (size_t r = 0; r < 200; ++r) {
    int32_t a_row = b.ColumnByName("b_a").i32()[r];
    EXPECT_EQ(bins[r],
              static_cast<uint64_t>(a.ColumnByName("a_d1").i32()[a_row]));
  }
}

TEST_F(Figure1Fixture, BrokenPathIsRejected) {
  DimensionUse use;
  use.dimension = d1_;
  use.path.fk_ids = {"FK_A_D2"};  // leads to DIM2, not DIM1
  Resolver resolver(&tables_, &catalog_);
  EXPECT_FALSE(ComputeBinColumn(tables_.at("A"), use, resolver).ok());
}

TEST_F(Figure1Fixture, TableIsSortedOnBdccKey) {
  BdccTable a = BuildA().ValueOrDie();
  EXPECT_EQ(a.full_bits(), 4);
  int key_col = a.bdcc_column_index();
  const auto& keys = a.data().column(key_col).i64();
  for (size_t r = 1; r < keys.size(); ++r) {
    EXPECT_LE(keys[r - 1], keys[r]);
  }
  // Keys recompute from the dimension columns (Definition 4).
  const auto& fk1 = a.data().ColumnByName("a_d1").i32();
  const auto& fk2 = a.data().ColumnByName("a_d2").i32();
  for (size_t r = 0; r < keys.size(); ++r) {
    uint64_t expect = bits::SpreadBits(static_cast<uint64_t>(fk1[r]),
                                       a.uses()[0].mask) |
                      bits::SpreadBits(static_cast<uint64_t>(fk2[r]),
                                       a.uses()[1].mask);
    EXPECT_EQ(static_cast<uint64_t>(keys[r]), expect);
  }
}

TEST_F(Figure1Fixture, CountTableMatchesData) {
  BdccTable a = BuildA().ValueOrDie();
  const CountTable& ct = a.count_table();
  EXPECT_EQ(ct.total_count(), 4000u);
  // Every group's rows share the reduced key.
  int shift = a.full_bits() - a.count_bits();
  const auto& keys = a.data().column(a.bdcc_column_index()).i64();
  for (size_t g = 0; g < ct.num_groups(); ++g) {
    const CountEntry& e = ct.entry(g);
    for (uint64_t r = e.row_begin; r < e.row_begin + e.count; ++r) {
      EXPECT_EQ(static_cast<uint64_t>(keys[r]) >> shift, e.key);
    }
  }
}

TEST_F(Figure1Fixture, CoClusteredTablesShareBinSemantics) {
  BdccTable a = BuildA().ValueOrDie();
  BdccTable b = BuildB().ValueOrDie();
  // Tuples of B joined to A must land in groups with the same D1/D2 prefix
  // (this is what sandwich joins rely on).
  const auto& b_keys = b.data().column(b.bdcc_column_index()).i64();
  const auto& b_fk = b.data().ColumnByName("b_a").i32();
  const Table& a_src = tables_.at("A");
  for (size_t r = 0; r < 500; ++r) {
    int32_t a_row = b_fk[r];
    uint64_t d1_bin =
        static_cast<uint64_t>(a_src.ColumnByName("a_d1").i32()[a_row]);
    uint64_t extracted = bits::ExtractBits(
        static_cast<uint64_t>(b_keys[r]), b.uses()[0].mask);
    EXPECT_EQ(extracted, d1_bin);
  }
}

TEST_F(Figure1Fixture, ScatterScanSupportsAllDimensionOrders) {
  BdccTable a = BuildA().ValueOrDie();
  // (D1), (D2), (D1,D2), (D2,D1) — the four orders of the paper's example.
  for (std::vector<size_t> order :
       {std::vector<size_t>{0}, {1}, {0, 1}, {1, 0}}) {
    auto ranges = PlanScatterScan(a, order).ValueOrDie();
    // All rows covered exactly once.
    uint64_t total = 0;
    for (const GroupRange& r : ranges) total += r.row_end - r.row_begin;
    EXPECT_EQ(total, 4000u);
    // Major dimension values must be non-decreasing over the plan.
    uint64_t prev = 0;
    bool first = true;
    for (const GroupRange& r : ranges) {
      uint64_t v = GroupValueOfUse(a, order[0], r.key);
      if (!first) {
        EXPECT_GE(v, prev);
      }
      prev = v;
      first = false;
    }
  }
}

TEST_F(Figure1Fixture, FilterGroupsByPrefix) {
  BdccTable a = BuildA().ValueOrDie();
  auto all = PlanNaturalScan(a);
  // Restrict D1 to bin 2 (Asia).
  auto filtered = FilterGroupsByPrefix(a, all, 0, 2, 2);
  uint64_t rows = 0;
  for (const GroupRange& r : filtered) rows += r.row_end - r.row_begin;
  // Count directly.
  uint64_t expect = 0;
  const auto& fk1 = a.data().ColumnByName("a_d1").i32();
  for (int32_t v : fk1) {
    if (v == 2) ++expect;
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(Figure1Fixture, SelfTuneRespectsAr) {
  // Huge AR -> coarse granularity; tiny AR -> full granularity.
  options_.tuning.efficient_access_bytes = 1;
  BdccTable fine = BuildA().ValueOrDie();
  EXPECT_EQ(fine.count_bits(), fine.full_bits());
  options_.tuning.efficient_access_bytes = 100ull << 20;
  BdccTable coarse = BuildA().ValueOrDie();
  EXPECT_EQ(coarse.count_bits(), 0);
}

TEST_F(Figure1Fixture, SmallGroupConsolidation) {
  options_.tuning.efficient_access_bytes = 1024;
  BdccTable a = BuildA().ValueOrDie();
  uint64_t logical = a.logical_rows();
  uint64_t physical_before = a.data().num_rows();
  auto stats = ConsolidateSmallGroups(&a, a.decision().densest_bytes_per_row > 0
                                              ? SelfTuneOptions{4096, 0.8}
                                              : SelfTuneOptions{})
                   .ValueOrDie();
  EXPECT_EQ(a.logical_rows(), logical);
  EXPECT_EQ(a.data().num_rows(), physical_before + stats.rows_copied);
  // Scanning via the count table still yields every logical row once.
  auto ranges = PlanNaturalScan(a);
  uint64_t rows = 0;
  for (const GroupRange& r : ranges) rows += r.row_end - r.row_begin;
  EXPECT_EQ(rows, logical);
  // Redirected groups point at the appended region.
  if (stats.groups_moved > 0) {
    bool any_redirected = false;
    for (const GroupRange& r : ranges) {
      if (r.row_begin >= physical_before) any_redirected = true;
    }
    EXPECT_TRUE(any_redirected);
  }
}

TEST_F(Figure1Fixture, BinRangeToGroupPrefix) {
  BdccTable a = BuildA().ValueOrDie();
  uint64_t lo, hi;
  ASSERT_TRUE(a.BinRangeToGroupPrefix(0, 1, 2, &lo, &hi));
  int used = bits::Ones(a.ReducedMask(0));
  EXPECT_EQ(lo, uint64_t{1} >> (2 - used));
  EXPECT_EQ(hi, uint64_t{2} >> (2 - used));
  EXPECT_LE(lo, hi);
}

}  // namespace
}  // namespace bdcc
