#include "bdcc/dimension.h"

#include "bdcc/binning.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

Dimension MakeGeoDimension() {
  // The paper's Figure 1 dimension D1: four continents, 2 bits.
  std::vector<Dimension::Bin> bins = {
      {0b00, {Value::String("Africa")}, true},
      {0b01, {Value::String("America")}, true},
      {0b10, {Value::String("Asia")}, true},
      {0b11, {Value::String("Europe")}, true},
  };
  return Dimension("D1", "DIM1", {"continent"}, 2, std::move(bins));
}

TEST(DimensionTest, Figure1GeoDimension) {
  Dimension d = MakeGeoDimension();
  EXPECT_EQ(d.bits(), 2);
  EXPECT_EQ(d.num_bins(), 4u);
  EXPECT_EQ(d.BinOf({Value::String("Africa")}), 0u);
  EXPECT_EQ(d.BinOf({Value::String("Asia")}), 2u);
  EXPECT_EQ(d.BinOf({Value::String("Europe")}), 3u);
  // Values beyond the last boundary clamp into the last bin.
  EXPECT_EQ(d.BinOf({Value::String("Zanzibar")}), 3u);
  // Values between boundaries land in the next bin up
  // ("America" < "Antarctica" < "Asia").
  EXPECT_EQ(d.BinOf({Value::String("Antarctica")}), 2u);
}

TEST(DimensionTest, IntFastPathMatchesGenericPath) {
  auto dim = binning::CreateRangeDimension("D3", "T", "v", 0, 1999, 4)
                 .ValueOrDie();
  ASSERT_TRUE(dim.HasIntFastPath());
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.Uniform(0, 1999);
    EXPECT_EQ(dim.BinOfInt(v), dim.BinOf({Value::Int64(v)}));
  }
}

TEST(DimensionTest, BinNumbersAscendInvariant) {
  auto dim = binning::CreateRangeDimension("D", "T", "v", 0, 255, 4)
                 .ValueOrDie();
  for (size_t i = 1; i < dim.num_bins(); ++i) {
    EXPECT_LT(dim.bin(i - 1).number, dim.bin(i).number);
    EXPECT_LT(CompareComposite(dim.bin(i - 1).max_incl, dim.bin(i).max_incl),
              0);
  }
}

TEST(DimensionTest, BinOfIsMonotoneProperty) {
  auto dim = binning::CreateRangeDimension("D", "T", "v", -1000, 1000, 5)
                 .ValueOrDie();
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    int64_t a = rng.Uniform(-1200, 1200);
    int64_t b = rng.Uniform(-1200, 1200);
    if (a > b) std::swap(a, b);
    EXPECT_LE(dim.BinOfInt(a), dim.BinOfInt(b)) << a << " vs " << b;
  }
}

TEST(DimensionTest, ReducedGranularityUnitesBins) {
  auto dim = binning::CreateRangeDimension("D", "T", "v", 0, 1023, 4)
                 .ValueOrDie();
  ASSERT_EQ(dim.num_bins(), 16u);
  auto reduced = dim.WithReducedGranularity(2).ValueOrDie();
  EXPECT_EQ(reduced.bits(), 2);
  EXPECT_EQ(reduced.num_bins(), 4u);
  // D|g: reduced bin number = original >> (bits - g).
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Uniform(0, 1023);
    EXPECT_EQ(reduced.BinOfInt(v), dim.BinOfInt(v) >> 2);
  }
}

TEST(DimensionTest, ReducedGranularityRejectsBadArgs) {
  auto dim = binning::CreateRangeDimension("D", "T", "v", 0, 7, 3)
                 .ValueOrDie();
  EXPECT_FALSE(dim.WithReducedGranularity(3).ok());
  EXPECT_FALSE(dim.WithReducedGranularity(-1).ok());
  EXPECT_TRUE(dim.WithReducedGranularity(0).ok());
}

TEST(DimensionTest, BinRange) {
  auto dim = binning::CreateRangeDimension("D", "T", "v", 0, 159, 4)
                 .ValueOrDie();
  uint64_t lo, hi;
  CompositeValue a{Value::Int64(0)}, b{Value::Int64(9)};
  dim.BinRange(&a, &b, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
  CompositeValue c{Value::Int64(150)};
  dim.BinRange(&c, nullptr, &lo, &hi);
  EXPECT_EQ(hi, dim.bin(dim.num_bins() - 1).number);
}

TEST(DimensionTest, CompositeKeyOrdering) {
  // D_NATION-style composite (regionkey, nationkey).
  std::vector<Dimension::Bin> bins;
  uint64_t n = 0;
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 2; ++k) {
      bins.push_back(
          {n++, {Value::Int32(r), Value::Int32(k * 10)}, true});
    }
  }
  Dimension d("D_N", "NATION", {"rk", "nk"}, 3, std::move(bins));
  EXPECT_EQ(d.BinOf({Value::Int32(0), Value::Int32(0)}), 0u);
  EXPECT_EQ(d.BinOf({Value::Int32(1), Value::Int32(10)}), 3u);
  EXPECT_EQ(d.BinOf({Value::Int32(2), Value::Int32(10)}), 5u);
}

TEST(DimensionTest, BinRangePrefixRegionStyle) {
  // A region equi-selection determines a consecutive bin range (paper IV).
  std::vector<Dimension::Bin> bins;
  uint64_t n = 0;
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 3; ++k) {
      bins.push_back({n++, {Value::Int32(r), Value::Int32(k)}, true});
    }
  }
  Dimension d("D_N", "NATION", {"rk", "nk"}, 4, std::move(bins));
  uint64_t lo, hi;
  CompositeValue r1{Value::Int32(1)};
  ASSERT_TRUE(d.BinRangePrefix(&r1, &r1, &lo, &hi));
  // Region 1's nations occupy bins 3..5; the conservative hi may include
  // the first bin of region 2.
  EXPECT_LE(lo, 3u);
  EXPECT_GE(hi, 5u);
  EXPECT_LE(hi, 6u);
  // All region-1 bins are inside [lo, hi].
  for (uint64_t b = 3; b <= 5; ++b) {
    EXPECT_GE(b, lo);
    EXPECT_LE(b, hi);
  }
}

TEST(DimensionTest, BinRangePrefixEmpty) {
  std::vector<Dimension::Bin> bins = {
      {0, {Value::Int32(5)}, true},
      {1, {Value::Int32(9)}, true},
  };
  Dimension d("D", "T", {"v"}, 1, std::move(bins));
  uint64_t lo, hi;
  CompositeValue big{Value::Int32(100)};
  // lo above the whole domain -> empty.
  EXPECT_FALSE(d.BinRangePrefix(&big, nullptr, &lo, &hi));
}

}  // namespace
}  // namespace bdcc
