#include "bdcc/count_table.h"

#include "bdcc/group_histogram.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace {

TEST(CountTableTest, BuildAtFullGranularity) {
  std::vector<uint64_t> keys = {0, 0, 1, 3, 3, 3, 7};
  CountTable ct = CountTable::Build(keys, 3, 3);
  ASSERT_EQ(ct.num_groups(), 4u);
  EXPECT_EQ(ct.entry(0).key, 0u);
  EXPECT_EQ(ct.entry(0).count, 2u);
  EXPECT_EQ(ct.entry(0).row_begin, 0u);
  EXPECT_EQ(ct.entry(2).key, 3u);
  EXPECT_EQ(ct.entry(2).count, 3u);
  EXPECT_EQ(ct.entry(2).row_begin, 3u);
  EXPECT_EQ(ct.entry(3).row_begin, 6u);
  EXPECT_EQ(ct.total_count(), 7u);
}

TEST(CountTableTest, ReducedGranularityUnitesGroups) {
  std::vector<uint64_t> keys = {0, 1, 2, 3, 4, 5, 6, 7};
  CountTable ct = CountTable::Build(keys, 3, 1);
  ASSERT_EQ(ct.num_groups(), 2u);
  EXPECT_EQ(ct.entry(0).count, 4u);
  EXPECT_EQ(ct.entry(1).count, 4u);
  EXPECT_EQ(ct.entry(1).row_begin, 4u);
}

TEST(CountTableTest, ZeroGranularityIsOneGroup) {
  std::vector<uint64_t> keys = {5, 9, 200};
  CountTable ct = CountTable::Build(keys, 10, 0);
  ASSERT_EQ(ct.num_groups(), 1u);
  EXPECT_EQ(ct.entry(0).count, 3u);
}

TEST(CountTableTest, LowerBound) {
  std::vector<uint64_t> keys = {2, 2, 5, 9};
  CountTable ct = CountTable::Build(keys, 4, 4);
  EXPECT_EQ(ct.LowerBound(0), 0u);
  EXPECT_EQ(ct.LowerBound(2), 0u);
  EXPECT_EQ(ct.LowerBound(3), 1u);
  EXPECT_EQ(ct.LowerBound(10), 3u);
}

TEST(CountTableTest, OffsetsAreConsecutiveProperty) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next64() & 0x3FF);
  std::sort(keys.begin(), keys.end());
  for (int b : {10, 7, 4, 1}) {
    CountTable ct = CountTable::Build(keys, 10, b);
    uint64_t at = 0;
    uint64_t prev_key = 0;
    for (size_t i = 0; i < ct.num_groups(); ++i) {
      EXPECT_EQ(ct.entry(i).row_begin, at);
      if (i > 0) {
        EXPECT_GT(ct.entry(i).key, prev_key);
      }
      prev_key = ct.entry(i).key;
      at += ct.entry(i).count;
    }
    EXPECT_EQ(at, keys.size());
  }
}

TEST(GroupSizeAnalysisTest, SizesAcrossGranularities) {
  std::vector<uint64_t> keys = {0, 0, 1, 2, 3, 3, 3, 3};
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 2);
  EXPECT_EQ(an.NumGroups(2), 4u);
  EXPECT_EQ(an.NumGroups(1), 2u);  // {0,1} and {2,3}
  EXPECT_EQ(an.NumGroups(0), 1u);
  EXPECT_EQ(an.Sizes(1)[0], 3u);
  EXPECT_EQ(an.Sizes(1)[1], 5u);
  EXPECT_EQ(an.Sizes(0)[0], 8u);
  EXPECT_EQ(an.total_rows(), 8u);
}

TEST(GroupSizeAnalysisTest, Histogram) {
  // Sizes at full granularity: 2,1,1,4 -> hist[0]=2, hist[1]=1, hist[2]=1.
  std::vector<uint64_t> keys = {0, 0, 1, 2, 3, 3, 3, 3};
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 2);
  std::vector<uint64_t> h = an.Histogram(2);
  ASSERT_GE(h.size(), 3u);
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 1u);
}

TEST(GroupSizeAnalysisTest, FractionInGroupsAtLeast) {
  std::vector<uint64_t> keys = {0, 0, 0, 0, 1, 2};  // sizes 4,1,1
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 2);
  EXPECT_DOUBLE_EQ(an.FractionInGroupsAtLeast(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(an.FractionInGroupsAtLeast(2, 2), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(an.FractionInGroupsAtLeast(2, 5), 0.0);
}

TEST(GroupSizeAnalysisTest, MissingGroupFactorSignalsCorrelation) {
  // Only 2 of 16 groups exist.
  std::vector<uint64_t> keys = {0, 0, 0, 15, 15};
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 4);
  EXPECT_DOUBLE_EQ(an.MissingGroupFactor(4), 8.0);
}

TEST(GroupSizeAnalysisTest, CoarseningConservesRowsProperty) {
  Rng rng(17);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(rng.Next64() & 0xFFF);
  std::sort(keys.begin(), keys.end());
  GroupSizeAnalysis an = GroupSizeAnalysis::Build(keys, 12);
  for (int b = 0; b <= 12; ++b) {
    uint64_t total = 0;
    for (uint64_t s : an.Sizes(b)) total += s;
    EXPECT_EQ(total, keys.size()) << "granularity " << b;
  }
}

}  // namespace
}  // namespace bdcc
