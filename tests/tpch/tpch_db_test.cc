// The three-scheme TPC-H database: physical properties per scheme, I/O
// plumbing, storage accounting, and thread-count-invariant query execution
// (parametrized over the schemes).
#include "tpch/tpch_db.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

class TpchDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchDbOptions options;
    options.scale_factor = 0.003;
    options.seed = 3;
    db_ = TpchDb::Create(options).ValueOrDie().release();
  }
  static void TearDownTestSuite() { delete db_; }
  static TpchDb* db_;
};

TpchDb* TpchDbTest::db_ = nullptr;

TEST_F(TpchDbTest, SchemesExposeSameTables) {
  for (const char* table :
       {"REGION", "NATION", "SUPPLIER", "CUSTOMER", "PART", "PARTSUPP",
        "ORDERS", "LINEITEM"}) {
    const Table* p = db_->plain().storage(table);
    const Table* k = db_->pk().storage(table);
    const Table* b = db_->bdcc().storage(table);
    ASSERT_NE(p, nullptr) << table;
    ASSERT_NE(k, nullptr) << table;
    ASSERT_NE(b, nullptr) << table;
    EXPECT_EQ(p->num_rows(), k->num_rows()) << table;
    EXPECT_EQ(p->num_rows(), b->num_rows()) << table;
  }
  EXPECT_EQ(db_->plain().storage("NOPE"), nullptr);
}

TEST_F(TpchDbTest, SchemeProperties) {
  EXPECT_EQ(db_->plain().scheme(), opt::Scheme::kPlain);
  EXPECT_EQ(db_->pk().scheme(), opt::Scheme::kPk);
  EXPECT_EQ(db_->bdcc().scheme(), opt::Scheme::kBdcc);
  // Sortedness is a PK-scheme property only.
  EXPECT_EQ(db_->plain().sorted_on("LINEITEM"), "");
  EXPECT_EQ(db_->pk().sorted_on("LINEITEM"), "l_orderkey");
  EXPECT_EQ(db_->pk().sorted_on("ORDERS"), "o_orderkey");
  EXPECT_EQ(db_->bdcc().sorted_on("ORDERS"), "");
  // Unique keys: single-column PKs only.
  EXPECT_TRUE(db_->pk().unique_key("ORDERS", "o_orderkey"));
  EXPECT_FALSE(db_->pk().unique_key("LINEITEM", "l_orderkey"));
  EXPECT_FALSE(db_->pk().unique_key("ORDERS", "o_custkey"));
}

TEST_F(TpchDbTest, PkTablesAreSorted) {
  const Table* orders = db_->pk().storage("ORDERS");
  const auto& keys = orders->ColumnByName("o_orderkey").i32();
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
}

TEST_F(TpchDbTest, BdccTablesOnlyWhereDesigned) {
  EXPECT_EQ(db_->bdcc().bdcc("REGION"), nullptr);  // unclustered leaf
  EXPECT_NE(db_->bdcc().bdcc("LINEITEM"), nullptr);
  EXPECT_NE(db_->bdcc().bdcc("NATION"), nullptr);
  EXPECT_EQ(db_->plain().bdcc("LINEITEM"), nullptr);  // wrong scheme
  // The BDCC storage view includes the artificial key column.
  EXPECT_TRUE(db_->bdcc().storage("LINEITEM")->HasColumn(kBdccColumnName));
  EXPECT_FALSE(db_->plain().storage("LINEITEM")->HasColumn(kBdccColumnName));
}

TEST_F(TpchDbTest, SchemesHaveIndependentIoAccounting) {
  db_->ResetIo();
  io::BufferPool* plain_pool = db_->pool(opt::Scheme::kPlain);
  const Table* t = db_->plain().storage("ORDERS");
  plain_pool->ReadRows(t->io_handle(0), 0, t->num_rows());
  EXPECT_GT(db_->device(opt::Scheme::kPlain)->stats().bytes_read, 0u);
  EXPECT_EQ(db_->device(opt::Scheme::kBdcc)->stats().bytes_read, 0u);
  db_->ResetIo();
  EXPECT_EQ(db_->device(opt::Scheme::kPlain)->stats().bytes_read, 0u);
}

TEST_F(TpchDbTest, DiskBytesComparableAcrossSchemes) {
  uint64_t plain = db_->DiskBytes(opt::Scheme::kPlain);
  uint64_t pk = db_->DiskBytes(opt::Scheme::kPk);
  uint64_t bdcc = db_->DiskBytes(opt::Scheme::kBdcc);
  EXPECT_GT(plain, 0u);
  EXPECT_EQ(plain, pk);  // same columns, different order
  // BDCC adds the _bdcc_ key columns (~8 bytes/row on clustered tables).
  EXPECT_GT(bdcc, plain);
  EXPECT_LT(static_cast<double>(bdcc) / static_cast<double>(plain), 1.25);
}

// Morsel-parallel execution must be invisible in the results: Q1 and Q6
// (the parallel-aggregation flagships) return the same batches at
// num_threads 1 and 4, on every scheme, with I/O charged through the
// scheme's (now concurrency-safe) buffer pool.
class TpchThreadInvarianceTest
    : public TpchDbTest,
      public ::testing::WithParamInterface<opt::Scheme> {};

TEST_P(TpchThreadInvarianceTest, ThreadCountDoesNotChangeResults) {
  opt::Scheme scheme = GetParam();
  for (int q : {1, 6}) {
    exec::Batch results[2];
    int thread_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      db_->ResetIo();
      exec::ExecContext exec_ctx(db_->pool(scheme));
      QueryContext ctx;
      ctx.db = &db_->db(scheme);
      ctx.exec = &exec_ctx;
      ctx.scale_factor = db_->options().scale_factor;
      ctx.planner.num_threads = thread_counts[i];
      auto result = RunTpchQuery(q, ctx);
      ASSERT_TRUE(result.ok()) << "Q" << q << " threads=" << thread_counts[i]
                               << ": " << result.status().ToString();
      results[i] = std::move(result).value();
      EXPECT_GT(exec_ctx.stats()->rows_scanned, 0u);
    }
    testutil::ExpectBatchesEqual(
        results[0], results[1],
        "Q" + std::to_string(q) + " " + opt::SchemeName(scheme) +
            " threads 1-vs-4");
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TpchThreadInvarianceTest,
                         ::testing::Values(opt::Scheme::kPlain,
                                           opt::Scheme::kPk,
                                           opt::Scheme::kBdcc),
                         [](const ::testing::TestParamInfo<opt::Scheme>& i) {
                           return opt::SchemeName(i.param);
                         });

TEST_F(TpchDbTest, PartialBuilds) {
  TpchDbOptions options;
  options.scale_factor = 0.002;
  options.build_plain = false;
  options.build_pk = false;
  auto db = TpchDb::Create(options).ValueOrDie();
  EXPECT_EQ(db->plain().storage("ORDERS"), nullptr);
  EXPECT_NE(db->bdcc().storage("ORDERS"), nullptr);
  EXPECT_EQ(db->design().tables.size(), 7u);
}

}  // namespace
}  // namespace tpch
}  // namespace bdcc
