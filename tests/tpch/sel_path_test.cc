// Sel-path vs compaction-path equality: every TPC-H query must return
// identical results with selection vectors enabled (scan predicate
// pushdown + late materialization, the default) and disabled (the legacy
// eager-compaction copy path), on every scheme, serial and parallel.
#include <memory>
#include <tuple>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

class SelPathTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static void SetUpTestSuite() {
    TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 7;
    db_ = TpchDb::Create(options).ValueOrDie();
  }
  static void TearDownTestSuite() { db_.reset(); }

  static Result<exec::Batch> Run(int q, opt::Scheme scheme, int num_threads,
                                 bool sel_enabled) {
    exec::ExecContext exec_ctx(nullptr);
    exec_ctx.set_sel_enabled(sel_enabled);
    QueryContext ctx;
    ctx.db = &db_->db(scheme);
    ctx.exec = &exec_ctx;
    ctx.scale_factor = db_->options().scale_factor;
    ctx.planner.num_threads = num_threads;
    // The legacy path also turns scan filter pushdown off, reproducing the
    // seed's scan -> full copy -> Filter -> Gather pipeline shape.
    ctx.planner.enable_scan_filter_pushdown = sel_enabled;
    return RunTpchQuery(q, ctx);
  }

  static std::unique_ptr<TpchDb> db_;
};

std::unique_ptr<TpchDb> SelPathTest::db_;

TEST_P(SelPathTest, SelAndCompactPathsAgree) {
  auto [q, threads] = GetParam();
  for (int s = 0; s < 3; ++s) {
    opt::Scheme scheme = static_cast<opt::Scheme>(s);
    auto sel = Run(q, scheme, threads, /*sel_enabled=*/true);
    ASSERT_TRUE(sel.ok()) << "Q" << q << " " << opt::SchemeName(scheme)
                          << " sel: " << sel.status().ToString();
    auto legacy = Run(q, scheme, threads, /*sel_enabled=*/false);
    ASSERT_TRUE(legacy.ok()) << "Q" << q << " " << opt::SchemeName(scheme)
                             << " legacy: " << legacy.status().ToString();
    testutil::ExpectBatchesEqual(
        legacy.value(), sel.value(),
        "Q" + std::to_string(q) + " " + opt::SchemeName(scheme) +
            " threads=" + std::to_string(threads) + " sel-vs-compact");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, SelPathTest,
    ::testing::Combine(::testing::Range(1, 23), ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "Q" + std::to_string(std::get<0>(info.param)) + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tpch
}  // namespace bdcc
