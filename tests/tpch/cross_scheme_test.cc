// The correctness anchor of the reproduction: every TPC-H query must return
// identical results under the Plain, PK and BDCC physical designs — the
// three schemes only change *how* data is laid out and accessed.
#include <memory>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

class CrossSchemeTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 7;
    db_ = TpchDb::Create(options).ValueOrDie();
  }
  static void TearDownTestSuite() { db_.reset(); }

  static std::unique_ptr<TpchDb> db_;
};

std::unique_ptr<TpchDb> CrossSchemeTest::db_;

TEST_P(CrossSchemeTest, SchemesAgree) {
  int q = GetParam();
  exec::Batch results[3];
  for (int s = 0; s < 3; ++s) {
    exec::ExecContext exec_ctx(nullptr);
    QueryContext ctx;
    ctx.db = &db_->db(static_cast<opt::Scheme>(s));
    ctx.exec = &exec_ctx;
    ctx.scale_factor = db_->options().scale_factor;
    auto result = RunTpchQuery(q, ctx);
    ASSERT_TRUE(result.ok())
        << "Q" << q << " on " << opt::SchemeName(static_cast<opt::Scheme>(s))
        << ": " << result.status().ToString();
    results[s] = std::move(result).value();
  }
  testutil::ExpectBatchesEqual(results[0], results[1],
                               "Q" + std::to_string(q) + " plain-vs-pk");
  testutil::ExpectBatchesEqual(results[0], results[2],
                               "Q" + std::to_string(q) + " plain-vs-bdcc");
  // Sanity: the queries should not be trivially empty. Exemptions are
  // queries whose predicates select rare events that may not occur at the
  // tiny test scale factor (Q2: exact min-cost tie set; Q18: orders with
  // sum(qty) > 300 are ~0.004% of orders in official TPC-H; Q21: exactly-
  // one-late-supplier multi-supplier orders of one nation).
  if (q != 2 && q != 18 && q != 21) {
    EXPECT_GT(results[0].num_rows, 0u) << "Q" << q << " returned no rows";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CrossSchemeTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace tpch
}  // namespace bdcc
