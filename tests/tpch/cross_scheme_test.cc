// The correctness anchor of the reproduction: every TPC-H query must return
// identical results under the Plain, PK and BDCC physical designs — the
// three schemes only change *how* data is laid out and accessed. The suite
// is additionally parametrized over PlannerOptions::num_threads: the
// morsel-parallel plans (num_threads=4) must agree with the classic serial
// plans (num_threads=1) on every query and scheme.
#include <memory>
#include <tuple>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

class CrossSchemeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static void SetUpTestSuite() {
    TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 7;
    db_ = TpchDb::Create(options).ValueOrDie();
  }
  static void TearDownTestSuite() { db_.reset(); }

  static Result<exec::Batch> Run(int q, opt::Scheme scheme, int num_threads) {
    exec::ExecContext exec_ctx(nullptr);
    QueryContext ctx;
    ctx.db = &db_->db(scheme);
    ctx.exec = &exec_ctx;
    ctx.scale_factor = db_->options().scale_factor;
    ctx.planner.num_threads = num_threads;
    return RunTpchQuery(q, ctx);
  }

  static std::unique_ptr<TpchDb> db_;
};

std::unique_ptr<TpchDb> CrossSchemeTest::db_;

TEST_P(CrossSchemeTest, SchemesAndThreadCountsAgree) {
  auto [q, threads] = GetParam();
  exec::Batch results[3];
  for (int s = 0; s < 3; ++s) {
    opt::Scheme scheme = static_cast<opt::Scheme>(s);
    auto result = Run(q, scheme, threads);
    ASSERT_TRUE(result.ok())
        << "Q" << q << " on " << opt::SchemeName(scheme) << " threads="
        << threads << ": " << result.status().ToString();
    results[s] = std::move(result).value();
  }
  std::string label = "Q" + std::to_string(q) + " (threads=" +
                      std::to_string(threads) + ") ";
  testutil::ExpectBatchesEqual(results[0], results[1], label + "plain-vs-pk");
  testutil::ExpectBatchesEqual(results[0], results[2],
                               label + "plain-vs-bdcc");
  // Parallel plans must agree with the serial plan on every scheme.
  if (threads > 1) {
    for (int s = 0; s < 3; ++s) {
      opt::Scheme scheme = static_cast<opt::Scheme>(s);
      auto serial = Run(q, scheme, 1);
      ASSERT_TRUE(serial.ok())
          << "Q" << q << " on " << opt::SchemeName(scheme)
          << " threads=1: " << serial.status().ToString();
      testutil::ExpectBatchesEqual(
          serial.value(), results[s],
          label + opt::SchemeName(scheme) + " serial-vs-parallel");
    }
  }
  // Sanity: the queries should not be trivially empty. Exemptions are
  // queries whose predicates select rare events that may not occur at the
  // tiny test scale factor (Q2: exact min-cost tie set; Q18: orders with
  // sum(qty) > 300 are ~0.004% of orders in official TPC-H; Q21: exactly-
  // one-late-supplier multi-supplier orders of one nation).
  if (q != 2 && q != 18 && q != 21) {
    EXPECT_GT(results[0].num_rows, 0u) << "Q" << q << " returned no rows";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, CrossSchemeTest,
    ::testing::Combine(::testing::Range(1, 23), ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "Q" + std::to_string(std::get<0>(info.param)) + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tpch
}  // namespace bdcc
