// TPC-H over a live (appending) lineitem: Q1 and Q6 run through a
// SnapshotDb overlay whose lineitem is a LiveTable rebuilt from a row
// subset, with the remainder appended as delta. Results must match the
// fully-clustered database at every base/delta split, before and after the
// background merge drains the delta — the layout (and the ungrouped plans
// the planner falls back to while a delta is live) must never show through.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "delta/live_table.h"
#include "delta/snapshot_db.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

// Resolver over the plain scheme's source rows plus the catalog's FKs
// (dimension-path lookups for key computation during rebuild and append).
class PlainResolver : public TableResolver {
 public:
  explicit PlainResolver(const TpchDb* db) : db_(db) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    const Table* t = db_->plain().storage(name);
    if (t == nullptr) return Status::NotFound(name);
    return t;
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return db_->schema_catalog().GetForeignKey(id);
  }

 private:
  const TpchDb* db_;
};

class TpchDeltaScanTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 7;
    options.build_pk = false;
    db_ = TpchDb::Create(options).ValueOrDie();
    resolver_ = std::make_unique<PlainResolver>(db_.get());
  }
  static void TearDownTestSuite() {
    resolver_.reset();
    db_.reset();
  }

  // Rebuild lineitem's BDCC table from its first `base_rows` source rows
  // (same dimension uses and build options as the designed table).
  static BdccTable RebuildLineitemBase(uint64_t base_rows) {
    const Table* full = db_->plain().storage("LINEITEM");
    Table subset(full->name());
    for (int c = 0; c < static_cast<int>(full->num_columns()); ++c) {
      subset.AddColumn(full->column_name(c), Column(full->column(c).type()))
          .AbortIfNotOK();
    }
    subset.AppendRowsFrom(*full, 0, base_rows);
    BdccBuildOptions build = db_->options().advisor.build;
    build.zone_rows = db_->options().zone_rows;
    return BuildBdccTable(std::move(subset),
                          db_->bdcc_tables().at("LINEITEM").uses(), *resolver_,
                          build)
        .ValueOrDie();
  }

  // Rows [begin, end) of the plain lineitem as an append batch.
  static Table SliceLineitem(uint64_t begin, uint64_t end) {
    const Table* full = db_->plain().storage("LINEITEM");
    Table slice(full->name());
    for (int c = 0; c < static_cast<int>(full->num_columns()); ++c) {
      slice.AddColumn(full->column_name(c), Column(full->column(c).type()))
          .AbortIfNotOK();
    }
    slice.AppendRowsFrom(*full, begin, end);
    return slice;
  }

  static Result<exec::Batch> Run(int q, const opt::PhysicalDb* db,
                                 int num_threads,
                                 exec::ExecContext* exec_ctx) {
    QueryContext ctx;
    ctx.db = db;
    ctx.exec = exec_ctx;
    ctx.scale_factor = db_->options().scale_factor;
    ctx.planner.num_threads = num_threads;
    return RunTpchQuery(q, ctx);
  }

  static std::unique_ptr<TpchDb> db_;
  static std::unique_ptr<PlainResolver> resolver_;
};

std::unique_ptr<TpchDb> TpchDeltaScanTest::db_;
std::unique_ptr<PlainResolver> TpchDeltaScanTest::resolver_;

// Param: delta percentage of lineitem rows (0, 10, 50).
TEST_P(TpchDeltaScanTest, Q1AndQ6AgreeAtEverySplitAndAfterMerge) {
  const int delta_pct = GetParam();
  const uint64_t total = db_->plain().storage("LINEITEM")->num_rows();
  const uint64_t base_rows = total - total * delta_pct / 100;

  auto live =
      delta::LiveTable::Create(RebuildLineitemBase(base_rows), resolver_.get())
          .ValueOrDie();
  // Append the remainder in three batches (multiple chunks, multiple
  // epochs), mirroring a steady trickle of inserts.
  if (base_rows < total) {
    uint64_t at = base_rows, step = (total - base_rows + 2) / 3;
    while (at < total) {
      uint64_t end = std::min(total, at + step);
      ASSERT_EQ(live->Append(SliceLineitem(at, end)).ValueOrDie(), end - at);
      at = end;
    }
  }

  delta::SnapshotDb overlay(&db_->bdcc());
  overlay.AddLiveTable(live.get());

  // References over the fully-clustered database, then the live phase for
  // both queries — the merge must stay AFTER both, or Q6 would see an
  // already-drained delta.
  std::map<int, exec::Batch> reference;
  for (int q : {1, 6}) {
    exec::ExecContext exec_ctx(nullptr);
    auto full = Run(q, &db_->bdcc(), /*num_threads=*/1, &exec_ctx);
    ASSERT_TRUE(full.ok()) << "Q" << q << ": " << full.status().ToString();
    reference[q] = std::move(full).value();
  }

  for (int q : {1, 6}) {
    std::string label =
        "Q" + std::to_string(q) + " delta=" + std::to_string(delta_pct) + "% ";
    for (int threads : {1, 4}) {
      exec::ExecContext exec_ctx(nullptr);
      auto result = Run(q, &overlay, threads, &exec_ctx);
      ASSERT_TRUE(result.ok())
          << label << "threads=" << threads << ": "
          << result.status().ToString();
      testutil::ExpectBatchesEqual(reference[q], result.value(),
                                   label + "live (threads=" +
                                       std::to_string(threads) + ") ");
      if (delta_pct > 0) {
        // The delta leg really ran (merged across parallel clones).
        EXPECT_GT(exec_ctx.stats()->delta_rows_scanned, 0u)
            << label << "threads=" << threads;
        EXPECT_GT(exec_ctx.stats()->delta_chunks, 0u);
      } else {
        EXPECT_EQ(exec_ctx.stats()->delta_rows_scanned, 0u);
      }
    }
  }

  // Drain the delta; the overlay re-pins, plans re-gain grouped paths, and
  // results still agree.
  ASSERT_TRUE(live->Merge().ok());
  overlay.Refresh();
  for (int q : {1, 6}) {
    std::string label =
        "Q" + std::to_string(q) + " delta=" + std::to_string(delta_pct) + "% ";
    exec::ExecContext exec_ctx(nullptr);
    auto merged = Run(q, &overlay, /*num_threads=*/1, &exec_ctx);
    ASSERT_TRUE(merged.ok()) << label << merged.status().ToString();
    testutil::ExpectBatchesEqual(reference[q], merged.value(),
                                 label + "post-merge ");
    EXPECT_EQ(exec_ctx.stats()->delta_rows_scanned, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, TpchDeltaScanTest,
                         ::testing::Values(0, 10, 50),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "delta" + std::to_string(info.param) + "pct";
                         });

}  // namespace
}  // namespace tpch
}  // namespace bdcc
