// End-to-end query lifecycle over the full TPC-H suite: enforced memory
// budgets (every plain-scheme query refuses a tiny limit with
// ResourceExhausted and runs clean once it is lifted, in the same process),
// cancellation and deadlines (stop within one morsel, release memory, leave
// the scheduler reusable), and the seeded fault-injection sweep the CI
// fault job drives (ctest -R FaultSweep with BDCC_FAULT_SEED in the
// environment).
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "gtest/gtest.h"
#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace tpch {
namespace {

// One DB for every suite in this binary — and, crucially for the fault
// sweep, built *before* any scoped injection is installed (the fixture must
// exist for injected faults during queries to be the thing under test).
TpchDb* SharedDb() {
  static std::unique_ptr<TpchDb> db = [] {
    TpchDbOptions options;
    options.scale_factor = 0.005;
    options.seed = 7;
    return TpchDb::Create(options).ValueOrDie();
  }();
  return db.get();
}

Result<exec::Batch> RunQuery(exec::ExecContext* exec_ctx, opt::Scheme scheme,
                        int q, uint64_t memory_limit, int num_threads) {
  QueryContext ctx;
  ctx.db = &SharedDb()->db(scheme);
  ctx.exec = exec_ctx;
  ctx.scale_factor = SharedDb()->options().scale_factor;
  ctx.planner.memory_limit_bytes = memory_limit;
  ctx.planner.num_threads = num_threads;
  return RunTpchQuery(q, ctx);
}

// ---------------------------------------------------------------- budgets

// Acceptance test for enforced budgets: under a one-byte budget every
// plain-scheme query (they all carry a hash aggregate, hash join, sort or
// top-n) must refuse with ResourceExhausted — never crash, never return a
// wrong result — drain its tracked memory, and then run to completion in
// the same process once the limit is lifted.
TEST(TpchMemoryBudgetTest, PlainQueriesRefuseTinyBudgetThenSucceed) {
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    exec::ExecContext exec_ctx(nullptr);
    auto capped = RunQuery(&exec_ctx, opt::Scheme::kPlain, q, /*memory_limit=*/1,
                      /*num_threads=*/1);
    if (capped.ok()) {
      // A plan whose selective filters leave every stateful operator empty
      // (Q17's Brand#23 / MED BOX part selection at this scale factor) never
      // touches tracked memory, so even a one-byte budget is satisfiable.
      // Assert that is really why it passed.
      EXPECT_EQ(exec_ctx.memory()->peak_bytes(), 0u)
          << "Q" << q << " allocated tracked memory yet ignored the budget";
      continue;
    }
    EXPECT_TRUE(capped.status().IsResourceExhausted())
        << "Q" << q << ": " << capped.status().ToString();
    EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u)
        << "Q" << q << " leaked tracked memory on the budget unwind";
    EXPECT_GE(exec_ctx.stats()->budget_denials, 1u) << "Q" << q;

    auto uncapped = RunQuery(&exec_ctx, opt::Scheme::kPlain, q,
                        /*memory_limit=*/0, /*num_threads=*/1);
    ASSERT_TRUE(uncapped.ok())
        << "Q" << q << " rerun after lifting the budget: "
        << uncapped.status().ToString();
    EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u) << "Q" << q;
  }
}

// The BDCC scheme routes many queries through sandwich operators whose
// working set is intentionally tiny; under a tiny budget each query must
// either succeed or refuse cleanly — and always drain its memory.
TEST(TpchMemoryBudgetTest, BdccQueriesNeverCrashUnderTinyBudget) {
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    exec::ExecContext exec_ctx(nullptr);
    auto result = RunQuery(&exec_ctx, opt::Scheme::kBdcc, q, /*memory_limit=*/1,
                      /*num_threads=*/1);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsResourceExhausted())
          << "Q" << q << ": " << result.status().ToString();
    }
    EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u) << "Q" << q;
  }
}

TEST(TpchMemoryBudgetTest, ParallelPlansRespectTheBudget) {
  for (int q : {1, 3, 9}) {
    exec::ExecContext exec_ctx(nullptr);
    auto capped = RunQuery(&exec_ctx, opt::Scheme::kPlain, q, /*memory_limit=*/1,
                      /*num_threads=*/4);
    ASSERT_FALSE(capped.ok()) << "Q" << q;
    EXPECT_TRUE(capped.status().IsResourceExhausted())
        << "Q" << q << ": " << capped.status().ToString();
    EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u) << "Q" << q;
    auto uncapped = RunQuery(&exec_ctx, opt::Scheme::kPlain, q,
                        /*memory_limit=*/0, /*num_threads=*/4);
    ASSERT_TRUE(uncapped.ok()) << "Q" << q << ": "
                               << uncapped.status().ToString();
  }
}

// ----------------------------------------------------------- cancellation

TEST(TpchCancelTest, CancelledQueryStopsReleasesAndRearms) {
  exec::ExecContext exec_ctx(nullptr);
  exec_ctx.control()->RequestCancel();
  auto result = RunQuery(&exec_ctx, opt::Scheme::kPlain, 9, /*memory_limit=*/0,
                    /*num_threads=*/4);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_GE(exec_ctx.stats()->morsels_cancelled, 1u);
  EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u);
  // Rearm the same context: the query (and the shared scheduler it used)
  // must run to completion afterwards.
  exec_ctx.control()->Reset();
  auto rerun = RunQuery(&exec_ctx, opt::Scheme::kPlain, 9, /*memory_limit=*/0,
                   /*num_threads=*/4);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
}

// Cancellation raced from another thread mid-query: whichever side wins the
// query either completes or returns Cancelled — and in both cases tracked
// memory drains and the process stays healthy.
TEST(TpchCancelTest, MidFlightCancelIsCleanEitherWay) {
  for (int round = 0; round < 4; ++round) {
    exec::ExecContext exec_ctx(nullptr);
    std::thread canceller([&exec_ctx, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
      exec_ctx.control()->RequestCancel();
    });
    auto result = RunQuery(&exec_ctx, opt::Scheme::kPlain, 9, /*memory_limit=*/0,
                      /*num_threads=*/4);
    canceller.join();
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCancelled())
          << result.status().ToString();
      EXPECT_GE(exec_ctx.stats()->morsels_cancelled, 1u);
    }
    EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u) << "round " << round;
  }
}

TEST(TpchCancelTest, PastDeadlineReturnsDeadlineExceeded) {
  exec::ExecContext exec_ctx(nullptr);
  exec_ctx.control()->SetDeadline(std::chrono::steady_clock::now() -
                                  std::chrono::milliseconds(1));
  auto result = RunQuery(&exec_ctx, opt::Scheme::kPlain, 1, /*memory_limit=*/0,
                    /*num_threads=*/1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u);
}

// ------------------------------------------------------------ fault sweep

// One pass of all 22 queries on both hash-join-heavy (plain) and
// sandwich-heavy (BDCC) plans with injection active: every query must
// either succeed or fail with a clean Status, and tracked memory must
// drain either way. Returns how many queries were aborted by a fault.
int SweepOnce() {
  int failed = 0;
  for (opt::Scheme scheme : {opt::Scheme::kPlain, opt::Scheme::kBdcc}) {
    for (int q = 1; q <= kNumTpchQueries; ++q) {
      exec::ExecContext exec_ctx(nullptr);
      auto result = RunQuery(&exec_ctx, scheme, q, /*memory_limit=*/0,
                        /*num_threads=*/4);
      if (!result.ok()) {
        ++failed;
        EXPECT_FALSE(result.status().ToString().empty());
      }
      EXPECT_EQ(exec_ctx.memory()->current_bytes(), 0u)
          << "Q" << q << " on " << opt::SchemeName(scheme)
          << " leaked tracked memory (status: "
          << result.status().ToString() << ")";
    }
  }
  return failed;
}

TEST(TpchFaultSweepTest, QueriesFailCleanOrSucceedUnderInjection) {
  SharedDb();  // build the fixture before injection is installed
  if (const char* env = std::getenv("BDCC_FAULT_SEED")) {
    // CI drives the seed (and probability) through the environment; the
    // env config is already active for the whole process.
    int failed = SweepOnce();
    std::printf("fault sweep (env seed %s): %d/%d query runs aborted, %llu "
                "faults fired\n",
                env, failed, 2 * kNumTpchQueries,
                static_cast<unsigned long long>(fault::InjectedCount()));
  } else {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      fault::ScopedFaultInjection scope(seed, 0.01);
      int failed = SweepOnce();
      std::printf(
          "fault sweep (seed %llu): %d/%d query runs aborted\n",
          static_cast<unsigned long long>(seed), failed,
          2 * kNumTpchQueries);
    }
  }
  // Whatever was injected, the engine is intact: a clean run still works.
  // (Probability 0 masks any env-driven config for this last check.)
  fault::ScopedFaultInjection off(0, 0.0);
  exec::ExecContext exec_ctx(nullptr);
  auto result = RunQuery(&exec_ctx, opt::Scheme::kPlain, 1, /*memory_limit=*/0,
                    /*num_threads=*/4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace tpch
}  // namespace bdcc
