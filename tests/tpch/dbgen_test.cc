// TPC-H generator: cardinalities, referential integrity, and the value
// distributions the 22 queries select on.
#include "tpch/dbgen.h"

#include <set>
#include <unordered_set>

#include "gtest/gtest.h"
#include "storage/types.h"

namespace bdcc {
namespace tpch {
namespace {

class DbgenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbgenOptions options;
    options.scale_factor = 0.01;
    options.seed = 1234;
    tables_ = new std::map<std::string, Table>(
        GenerateTpch(options).ValueOrDie());
  }
  static void TearDownTestSuite() { delete tables_; }
  static const Table& T(const std::string& name) { return tables_->at(name); }

  static std::map<std::string, Table>* tables_;
};

std::map<std::string, Table>* DbgenTest::tables_ = nullptr;

TEST_F(DbgenTest, Cardinalities) {
  TpchCardinalities c = TpchCardinalities::At(0.01);
  EXPECT_EQ(T("REGION").num_rows(), 5u);
  EXPECT_EQ(T("NATION").num_rows(), 25u);
  EXPECT_EQ(T("SUPPLIER").num_rows(), c.supplier);
  EXPECT_EQ(T("CUSTOMER").num_rows(), c.customer);
  EXPECT_EQ(T("PART").num_rows(), c.part);
  EXPECT_EQ(T("PARTSUPP").num_rows(), c.part * 4);
  EXPECT_EQ(T("ORDERS").num_rows(), c.orders);
  // 1..7 lineitems per order.
  EXPECT_GE(T("LINEITEM").num_rows(), c.orders);
  EXPECT_LE(T("LINEITEM").num_rows(), c.orders * 7);
}

TEST_F(DbgenTest, ForeignKeyIntegrity) {
  auto key_set = [&](const std::string& table, const std::string& col) {
    std::unordered_set<int32_t> out;
    for (int32_t v : T(table).ColumnByName(col).i32()) out.insert(v);
    return out;
  };
  auto check_fk = [&](const std::string& from, const std::string& fcol,
                      const std::string& to, const std::string& tcol) {
    auto keys = key_set(to, tcol);
    for (int32_t v : T(from).ColumnByName(fcol).i32()) {
      ASSERT_TRUE(keys.count(v)) << from << "." << fcol << "=" << v;
    }
  };
  check_fk("NATION", "n_regionkey", "REGION", "r_regionkey");
  check_fk("SUPPLIER", "s_nationkey", "NATION", "n_nationkey");
  check_fk("CUSTOMER", "c_nationkey", "NATION", "n_nationkey");
  check_fk("ORDERS", "o_custkey", "CUSTOMER", "c_custkey");
  check_fk("LINEITEM", "l_orderkey", "ORDERS", "o_orderkey");
  check_fk("LINEITEM", "l_partkey", "PART", "p_partkey");
  check_fk("LINEITEM", "l_suppkey", "SUPPLIER", "s_suppkey");
  check_fk("PARTSUPP", "ps_partkey", "PART", "p_partkey");
  check_fk("PARTSUPP", "ps_suppkey", "SUPPLIER", "s_suppkey");
}

TEST_F(DbgenTest, LineitemPartSuppPairsExistInPartsupp) {
  // Q9 joins on (l_partkey, l_suppkey): every pair must be in PARTSUPP.
  std::set<std::pair<int32_t, int32_t>> ps;
  const auto& pk = T("PARTSUPP").ColumnByName("ps_partkey").i32();
  const auto& sk = T("PARTSUPP").ColumnByName("ps_suppkey").i32();
  for (size_t i = 0; i < pk.size(); ++i) ps.insert({pk[i], sk[i]});
  const auto& lp = T("LINEITEM").ColumnByName("l_partkey").i32();
  const auto& ls = T("LINEITEM").ColumnByName("l_suppkey").i32();
  for (size_t i = 0; i < lp.size(); ++i) {
    ASSERT_TRUE(ps.count({lp[i], ls[i]})) << "row " << i;
  }
}

TEST_F(DbgenTest, DateDomains) {
  int32_t lo = ParseDate("1992-01-01"), hi = ParseDate("1998-08-02");
  for (int32_t d : T("ORDERS").ColumnByName("o_orderdate").i32()) {
    ASSERT_GE(d, lo);
    ASSERT_LE(d, hi);
  }
  // Lineitem date causality: ship > order, receipt > ship.
  const auto& sd = T("LINEITEM").ColumnByName("l_shipdate").i32();
  const auto& rd = T("LINEITEM").ColumnByName("l_receiptdate").i32();
  for (size_t i = 0; i < sd.size(); ++i) {
    ASSERT_GT(rd[i], sd[i]);
  }
}

TEST_F(DbgenTest, QuerySensitiveDistributions) {
  // Q22: phone country code = 10 + nationkey.
  const Column& phone = T("CUSTOMER").ColumnByName("c_phone");
  const auto& nk = T("CUSTOMER").ColumnByName("c_nationkey").i32();
  for (size_t i = 0; i < 100; ++i) {
    int code = std::stoi(std::string(phone.GetString(i).substr(0, 2)));
    EXPECT_EQ(code, 10 + nk[i]);
  }
  // Q22: a third of customers never order.
  std::unordered_set<int32_t> with_orders;
  for (int32_t c : T("ORDERS").ColumnByName("o_custkey").i32()) {
    with_orders.insert(c);
    EXPECT_NE(c % 3, 0);
  }
  // Q13: some orders carry the special-requests pattern.
  int special = 0;
  const Column& comment = T("ORDERS").ColumnByName("o_comment");
  for (size_t i = 0; i < T("ORDERS").num_rows(); ++i) {
    std::string_view s = comment.GetString(i);
    if (s.find("special") != std::string_view::npos &&
        s.find("requests") != std::string_view::npos) {
      ++special;
    }
  }
  EXPECT_GT(special, 0);
  EXPECT_LT(special, static_cast<int>(T("ORDERS").num_rows() / 10));
  // Q16: a few suppliers have complaints.
  int complaints = 0;
  const Column& sc = T("SUPPLIER").ColumnByName("s_comment");
  for (size_t i = 0; i < T("SUPPLIER").num_rows(); ++i) {
    std::string_view s = sc.GetString(i);
    if (s.find("Customer") != std::string_view::npos &&
        s.find("Complaints") != std::string_view::npos) {
      ++complaints;
    }
  }
  EXPECT_GE(complaints, 0);  // present at larger SF; never spurious below
  // Q14/Q8: part types composed of three syllables; PROMO prefix exists.
  bool promo = false;
  const Column& ptype = T("PART").ColumnByName("p_type");
  for (size_t i = 0; i < T("PART").num_rows(); ++i) {
    if (ptype.GetString(i).substr(0, 5) == "PROMO") promo = true;
  }
  EXPECT_TRUE(promo);
}

TEST_F(DbgenTest, RetailPriceFormula) {
  const auto& price = T("PART").ColumnByName("p_retailprice").f64();
  for (int64_t p = 1; p <= 50; ++p) {
    double expect =
        (90000.0 + ((p / 10) % 20001) + 100.0 * (p % 1000)) / 100.0;
    EXPECT_DOUBLE_EQ(price[p - 1], expect);
  }
}

TEST_F(DbgenTest, Deterministic) {
  DbgenOptions options;
  options.scale_factor = 0.002;
  options.seed = 9;
  auto a = GenerateTpch(options).ValueOrDie();
  auto b = GenerateTpch(options).ValueOrDie();
  const auto& ka = a.at("LINEITEM").ColumnByName("l_partkey").i32();
  const auto& kb = b.at("LINEITEM").ColumnByName("l_partkey").i32();
  ASSERT_EQ(ka.size(), kb.size());
  EXPECT_EQ(ka, kb);
}

TEST(PartSuppSupplierTest, SpecFormulaInRange) {
  for (int32_t p : {1, 7, 100, 1999}) {
    std::set<int32_t> supps;
    for (int j = 0; j < 4; ++j) {
      int32_t s = PartSuppSupplier(p, j, 100);
      EXPECT_GE(s, 1);
      EXPECT_LE(s, 100);
      supps.insert(s);
    }
    EXPECT_EQ(supps.size(), 4u) << "suppliers must be distinct for part " << p;
  }
}

}  // namespace
}  // namespace tpch
}  // namespace bdcc
