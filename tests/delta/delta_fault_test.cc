// Seeded fault sweep over the delta lifecycle (the CI fault job runs this
// via `ctest -R FaultSweep` with BDCC_FAULT_SEED in the environment): under
// random `delta.append` / `delta.merge` / scan faults, every operation
// either succeeds or fails cleanly — a scan of the current snapshot always
// returns exactly the rows of the appends that reported success, and after
// lifting the injection the table merges and scans clean.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bdcc/scatter_scan.h"
#include "common/fault_injection.h"
#include "delta/live_table.h"
#include "exec/scan.h"
#include "tests/delta/delta_fixture.h"

namespace bdcc {
namespace delta {
namespace {

class DeltaFaultSweepTest : public DeltaFixture {
 protected:
  static Result<uint64_t> ScanRows(LiveTable* live) {
    auto snap = live->OpenSnapshot();
    exec::ExecContext ctx(nullptr);
    exec::BdccScan scan(snap->base.get(), {"f_d", "f_payload"},
                        PlanNaturalScan(*snap->base));
    std::vector<const Table*> chunks;
    for (const auto& chunk : snap->chunks) chunks.push_back(&chunk->data());
    scan.AttachDelta(snap, std::move(chunks));
    auto batch = exec::CollectAll(&scan, &ctx);
    if (!batch.ok()) return batch.status();
    return static_cast<uint64_t>(batch.value().num_rows);
  }

  // One lifecycle under whatever injection is active: interleaved appends,
  // bounded merge passes, and scans. Returns the number of operations that
  // failed (cleanly). EXPECTs enforce the atomicity invariant throughout.
  int SweepOnce(LiveTable* live, uint64_t* expect_rows, int64_t seed_base) {
    int failed = 0;
    for (int step = 0; step < 8; ++step) {
      Table rows = MakeRows(seed_base + step, 300);
      auto appended = live->Append(rows);
      if (appended.ok()) {
        *expect_rows += 300;
      } else {
        ++failed;
      }
      if (step % 2 == 1) {
        LiveTable::MergeOptions bounded;
        bounded.max_groups = 16;
        auto merged = live->Merge(bounded);
        if (!merged.ok()) ++failed;
      }
      // Scans fail only via injected scan faults; whenever one completes it
      // must see exactly the successfully-appended rows.
      auto scanned = ScanRows(live);
      if (scanned.ok()) {
        EXPECT_EQ(scanned.value(), *expect_rows) << "step " << step;
      } else {
        ++failed;
      }
    }
    return failed;
  }
};

TEST_F(DeltaFaultSweepTest, LifecycleFailsCleanOrSucceedsUnderInjection) {
  Resolver resolver(&tables_, &catalog_);
  auto live =
      LiveTable::Create(Build(tables_.at("F")), &resolver).ValueOrDie();
  uint64_t expect_rows = 5000;

  if (const char* env = std::getenv("BDCC_FAULT_SEED")) {
    // CI drives seed/probability/points through the environment; the config
    // is already active for the whole process.
    int failed = SweepOnce(live.get(), &expect_rows, /*seed_base=*/1);
    std::printf("delta fault sweep (env seed %s): %d ops failed, %llu faults "
                "fired\n",
                env, failed,
                static_cast<unsigned long long>(fault::InjectedCount()));
  } else {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      fault::ScopedFaultInjection scope(seed, 0.05);
      int failed = SweepOnce(live.get(), &expect_rows,
                             /*seed_base=*/static_cast<int64_t>(seed) * 100);
      std::printf("delta fault sweep (seed %llu): %d ops failed\n",
                  static_cast<unsigned long long>(seed), failed);
    }
  }

  // Injection off: the table drains and scans clean — no partial state from
  // any failed append or merge survived.
  fault::ScopedFaultInjection off(0, 0.0);
  ASSERT_TRUE(live->Merge().ok());
  EXPECT_EQ(live->delta_rows(), 0u);
  EXPECT_EQ(ScanRows(live.get()).ValueOrDie(), expect_rows);

  LiveTable::Stats stats = live->stats();
  EXPECT_EQ(stats.rows_appended + 5000, expect_rows);
}

}  // namespace
}  // namespace delta
}  // namespace bdcc
