// DeltaStore / DeltaChunk: sealed chunks are key-sorted, zone-mapped,
// group-bucketed, carry their own dictionaries, and account their memory.
#include "delta/delta_store.h"

#include <set>
#include <string>

#include "bdcc/append.h"
#include "common/fault_injection.h"
#include "tests/delta/delta_fixture.h"

namespace bdcc {
namespace delta {
namespace {

using DeltaStoreTest = DeltaFixture;

TEST_F(DeltaStoreTest, SealedChunkIsSortedBucketedAndSchemaAligned) {
  BdccTable base = Build(tables_.at("F"));
  DeltaStore store(/*zone_rows=*/256, /*memory_limit=*/0);
  Resolver resolver(&tables_, &catalog_);

  Table rows = MakeRows(3, 1000);
  auto chunk = store.Append(base, rows, resolver).ValueOrDie();
  ASSERT_EQ(chunk->num_rows(), 1000u);

  // Same physical schema as the base's data(), including the key column.
  const Table& data = chunk->data();
  ASSERT_EQ(data.num_columns(), base.data().num_columns());
  for (int c = 0; c < static_cast<int>(data.num_columns()); ++c) {
    EXPECT_EQ(data.column_name(c), base.data().column_name(c));
  }

  // Sorted on the full-granularity key.
  const auto& keys = data.column(base.bdcc_column_index()).i64();
  for (size_t i = 1; i < keys.size(); ++i) ASSERT_LE(keys[i - 1], keys[i]);

  // Keys equal the serial key computation over the same rows (Definition 4:
  // a new tuple's key depends only on its own bins).
  std::multiset<uint64_t> expect;
  for (uint64_t k : ComputeBdccKeys(base, rows, resolver).ValueOrDie()) {
    expect.insert(k);
  }
  std::multiset<uint64_t> got(keys.begin(), keys.end());
  EXPECT_EQ(expect, got);

  // Group slices tile the chunk in key order at count granularity.
  int shift = base.full_bits() - base.count_bits();
  uint64_t covered = 0, prev_key = 0;
  bool first = true;
  for (const DeltaChunk::GroupSlice& g : chunk->groups()) {
    ASSERT_EQ(g.row_begin, covered);
    ASSERT_LT(g.row_begin, g.row_end);
    for (uint64_t r = g.row_begin; r < g.row_end; ++r) {
      ASSERT_EQ(static_cast<uint64_t>(keys[r]) >> shift, g.key);
    }
    if (!first) {
      ASSERT_LT(prev_key, g.key);
    }
    first = false;
    prev_key = g.key;
    covered = g.row_end;
  }
  EXPECT_EQ(covered, 1000u);
}

TEST_F(DeltaStoreTest, ChunksChargeAndReleaseTrackedMemory) {
  BdccTable base = Build(tables_.at("F"));
  DeltaStore store(256, 0);
  Resolver resolver(&tables_, &catalog_);

  ASSERT_EQ(store.memory()->current_bytes(), 0u);
  auto chunk = store.Append(base, MakeRows(1, 500), resolver).ValueOrDie();
  EXPECT_GT(chunk->bytes(), 0u);
  EXPECT_EQ(store.memory()->current_bytes(), chunk->bytes());
  chunk.reset();
  EXPECT_EQ(store.memory()->current_bytes(), 0u);
}

TEST_F(DeltaStoreTest, MemoryBudgetRefusesCleanly) {
  BdccTable base = Build(tables_.at("F"));
  DeltaStore store(256, /*memory_limit=*/64);  // far below any chunk
  Resolver resolver(&tables_, &catalog_);

  auto refused = store.Append(base, MakeRows(1, 500), resolver);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_EQ(store.memory()->current_bytes(), 0u);
}

TEST_F(DeltaStoreTest, ChunkDictionariesAreIndependentOfTheBase) {
  BdccTable base = Build(tables_.at("F"));
  DeltaStore store(256, 0);
  Resolver resolver(&tables_, &catalog_);

  // Seed 5 interns tag values the base (seed 0) never saw; sealing must not
  // touch the base's dictionary.
  int tag_col = -1;
  for (int c = 0; c < static_cast<int>(base.data().num_columns()); ++c) {
    if (base.data().column_name(c) == "f_tag") tag_col = c;
  }
  ASSERT_GE(tag_col, 0);
  const auto& base_dict = base.data().column(tag_col).dict();
  ASSERT_NE(base_dict, nullptr);
  int32_t base_dict_size = base_dict->size();

  auto chunk = store.Append(base, MakeRows(5, 300), resolver).ValueOrDie();
  const auto& chunk_dict = chunk->data().column(tag_col).dict();
  ASSERT_NE(chunk_dict, nullptr);
  EXPECT_NE(chunk_dict.get(), base_dict.get());
  EXPECT_EQ(base_dict->size(), base_dict_size);
}

TEST_F(DeltaStoreTest, AppendFaultFailsWithoutSideEffects) {
  BdccTable base = Build(tables_.at("F"));
  DeltaStore store(256, 0);
  Resolver resolver(&tables_, &catalog_);
  {
    fault::ScopedFaultInjection fault(/*seed=*/11, /*probability=*/1.0,
                                      fault::kDeltaAppend);
    auto failed = store.Append(base, MakeRows(2, 100), resolver);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kIOError)
        << failed.status().ToString();
    EXPECT_EQ(store.memory()->current_bytes(), 0u);
  }
  // The same append succeeds once the scope ends.
  auto chunk = store.Append(base, MakeRows(2, 100), resolver).ValueOrDie();
  EXPECT_EQ(chunk->num_rows(), 100u);
}

}  // namespace
}  // namespace delta
}  // namespace bdcc
