// Snapshot-consistent scans over a live table: the clustered leg plus the
// delta leg must return exactly the rows of the pinned snapshot — equal to
// a merged table's scan, under sarg filtering (including per-chunk string
// dictionaries), and under concurrent append/merge/scan (the TSan suite).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bdcc/scatter_scan.h"
#include "common/task_scheduler.h"
#include "delta/delta_merger.h"
#include "delta/live_table.h"
#include "exec/scan.h"
#include "tests/delta/delta_fixture.h"
#include "tests/test_util.h"

namespace bdcc {
namespace delta {
namespace {

class LiveScanTest : public DeltaFixture {
 protected:
  std::unique_ptr<LiveTable> MakeLive() {
    resolver_ = std::make_unique<Resolver>(&tables_, &catalog_);
    return LiveTable::Create(Build(tables_.at("F")), resolver_.get())
        .ValueOrDie();
  }

  // Scan a pinned snapshot: clustered ranges of its base version plus the
  // delta leg over its chunks.
  static Result<exec::Batch> ScanSnapshot(
      std::shared_ptr<const TableSnapshot> snap,
      std::vector<exec::ScanPredicate> preds, bool row_filter,
      exec::ExecContext* ctx) {
    exec::BdccScan scan(snap->base.get(), {"f_d", "f_payload", "f_tag"},
                        PlanNaturalScan(*snap->base), preds);
    std::vector<const Table*> chunks;
    for (const auto& chunk : snap->chunks) chunks.push_back(&chunk->data());
    scan.AttachDelta(snap, std::move(chunks));
    scan.EnableRowFilter(row_filter);
    return exec::CollectAll(&scan, ctx);
  }

  std::unique_ptr<Resolver> resolver_;
};

TEST_F(LiveScanTest, LiveScanEqualsMergedScan) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(1, 700)).ok());
  ASSERT_TRUE(live->Append(MakeRows(2, 500)).ok());

  exec::ExecContext live_ctx(nullptr);
  auto snap = live->OpenSnapshot();
  exec::Batch with_delta =
      ScanSnapshot(snap, {}, /*row_filter=*/false, &live_ctx).ValueOrDie();
  EXPECT_EQ(with_delta.num_rows, 5000u + 1200u);
  EXPECT_EQ(live_ctx.stats()->delta_rows_scanned, 1200u);
  EXPECT_EQ(live_ctx.stats()->delta_chunks, 2u);

  ASSERT_TRUE(live->Merge().ok());
  exec::ExecContext merged_ctx(nullptr);
  exec::Batch merged =
      ScanSnapshot(live->OpenSnapshot(), {}, false, &merged_ctx).ValueOrDie();
  EXPECT_EQ(merged_ctx.stats()->delta_rows_scanned, 0u);
  testutil::ExpectBatchesEqual(with_delta, merged, "live-vs-merged ");
}

TEST_F(LiveScanTest, SargFilteringCoversBothLegs) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(1, 700)).ok());
  ASSERT_TRUE(live->Append(MakeRows(2, 500)).ok());

  // Numeric range on the clustered dimension column plus a string range
  // that must be re-resolved against every chunk's own dictionary.
  std::vector<exec::ScanPredicate> preds = {
      {"f_d", ValueRange{Value::Int32(10), Value::Int32(20)}},
      {"f_tag", ValueRange{Value::String("tag_0_0"), Value::String("tag_1_3")}},
  };

  exec::ExecContext live_ctx(nullptr);
  exec::Batch with_delta =
      ScanSnapshot(live->OpenSnapshot(), preds, /*row_filter=*/true, &live_ctx)
          .ValueOrDie();

  ASSERT_TRUE(live->Merge().ok());
  exec::ExecContext merged_ctx(nullptr);
  exec::Batch merged =
      ScanSnapshot(live->OpenSnapshot(), preds, true, &merged_ctx)
          .ValueOrDie();
  ASSERT_GT(merged.num_rows, 0u);
  testutil::ExpectBatchesEqual(with_delta, merged, "filtered live-vs-merged ");
}

TEST_F(LiveScanTest, PinnedSnapshotScansAreRepeatableAcrossMutation) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(1, 700)).ok());
  auto snap = live->OpenSnapshot();

  exec::ExecContext ctx1(nullptr);
  exec::Batch before = ScanSnapshot(snap, {}, false, &ctx1).ValueOrDie();

  // Concurrent-world mutations: more appends, then a merge.
  ASSERT_TRUE(live->Append(MakeRows(2, 600)).ok());
  ASSERT_TRUE(live->Merge().ok());

  exec::ExecContext ctx2(nullptr);
  exec::Batch after = ScanSnapshot(snap, {}, false, &ctx2).ValueOrDie();
  EXPECT_EQ(before.num_rows, 5700u);
  testutil::ExpectBatchesEqual(before, after, "pinned snapshot repeat ");
}

// The TSan anchor: concurrent appenders, a background merger, and scanning
// readers. Every scan must see exactly its snapshot's rows (base logical
// rows + delta rows) with the payload sum matching a direct read of the
// snapshot's own tables.
TEST_F(LiveScanTest, DeltaConcurrencyAppendMergeScan) {
  auto live = MakeLive();
  common::TaskScheduler scheduler(2);
  DeltaMerger::Options merge_options;
  merge_options.trigger_rows = 400;
  merge_options.max_groups_per_pass = 8;
  DeltaMerger merger(live.get(), &scheduler, merge_options);

  constexpr int kWriters = 2;
  constexpr int kBatchesPerWriter = 6;
  constexpr int kBatchRows = 250;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        auto appended =
            live->Append(MakeRows(1 + w * kBatchesPerWriter + b, kBatchRows));
        if (!appended.ok()) failed.store(true);
        std::this_thread::yield();
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 12; ++i) {
        auto snap = live->OpenSnapshot();
        exec::ExecContext ctx(nullptr);
        auto scanned = ScanSnapshot(snap, {}, false, &ctx);
        if (!scanned.ok()) {
          failed.store(true);
          return;
        }
        // Row count: exactly the snapshot's split.
        uint64_t expect_rows = snap->base->logical_rows() + snap->delta_rows;
        if (scanned.value().num_rows != expect_rows) failed.store(true);
        // Payload sum: scan vs direct reads of the pinned tables.
        int64_t direct = 0, from_scan = 0;
        const Table& base_data = snap->base->data();
        int payload_col = -1;
        for (int c = 0; c < static_cast<int>(base_data.num_columns()); ++c) {
          if (base_data.column_name(c) == "f_payload") payload_col = c;
        }
        for (uint64_t row = 0; row < snap->base->logical_rows(); ++row) {
          direct += base_data.column(payload_col).i64()[row];
        }
        for (const auto& chunk : snap->chunks) {
          for (int64_t v : chunk->data().column(payload_col).i64()) {
            direct += v;
          }
        }
        const exec::Batch& batch = scanned.value();
        for (size_t row = 0; row < batch.num_rows; ++row) {
          from_scan += batch.columns[1].i64_data()[batch.RowAt(row)];
        }
        if (direct != from_scan) failed.store(true);
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  merger.Drain();
  merger.Stop();
  EXPECT_TRUE(merger.last_error().ok()) << merger.last_error().ToString();

  // Everything landed: one final merge pass (the merger stops at its
  // trigger) and a full scan.
  ASSERT_TRUE(live->Merge().ok());
  exec::ExecContext ctx(nullptr);
  exec::Batch final_scan =
      ScanSnapshot(live->OpenSnapshot(), {}, false, &ctx).ValueOrDie();
  EXPECT_EQ(final_scan.num_rows,
            5000u + uint64_t{kWriters} * kBatchesPerWriter * kBatchRows);
  EXPECT_EQ(ctx.stats()->delta_rows_scanned, 0u);
}

}  // namespace
}  // namespace delta
}  // namespace bdcc
