// LiveTable: epoch publication, snapshot pinning, merge-equals-rebuild,
// bounded passes with residual chunks, and failure atomicity.
#include "delta/live_table.h"

#include <memory>
#include <string>
#include <vector>

#include "bdcc/append.h"
#include "bdcc/small_groups.h"
#include "common/fault_injection.h"
#include "tests/delta/delta_fixture.h"

namespace bdcc {
namespace delta {
namespace {

class LiveTableTest : public DeltaFixture {
 protected:
  std::unique_ptr<LiveTable> MakeLive() {
    resolver_ = std::make_unique<Resolver>(&tables_, &catalog_);
    return LiveTable::Create(Build(tables_.at("F")), resolver_.get())
        .ValueOrDie();
  }

  // Every cell equal (strings via materialized values, so independent
  // dictionaries with different code assignments still compare equal).
  static void ExpectTablesEqual(const Table& a, const Table& b) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (int c = 0; c < static_cast<int>(a.num_columns()); ++c) {
      ASSERT_EQ(a.column_name(c), b.column_name(c));
      for (uint64_t r = 0; r < a.num_rows(); ++r) {
        ASSERT_EQ(a.column(c).GetValue(r).ToString(),
                  b.column(c).GetValue(r).ToString())
            << a.column_name(c) << " row " << r;
      }
    }
  }

  static void ExpectCountTablesEqual(const BdccTable& a, const BdccTable& b) {
    ASSERT_EQ(a.count_bits(), b.count_bits());
    const auto& ea = a.count_table().entries();
    const auto& eb = b.count_table().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].key, eb[i].key);
      EXPECT_EQ(ea[i].count, eb[i].count);
      EXPECT_EQ(ea[i].row_begin, eb[i].row_begin);
    }
  }

  std::unique_ptr<Resolver> resolver_;
};

TEST_F(LiveTableTest, AppendPublishesNewEpochs) {
  auto live = MakeLive();
  EXPECT_EQ(live->epoch(), 1u);
  EXPECT_EQ(live->delta_rows(), 0u);

  EXPECT_EQ(live->Append(MakeRows(1, 300)).ValueOrDie(), 300u);
  EXPECT_EQ(live->epoch(), 2u);
  EXPECT_EQ(live->delta_rows(), 300u);

  EXPECT_EQ(live->Append(MakeRows(2, 200)).ValueOrDie(), 200u);
  EXPECT_EQ(live->epoch(), 3u);
  EXPECT_EQ(live->delta_rows(), 500u);

  // Empty appends publish nothing.
  EXPECT_EQ(live->Append(MakeRows(3, 0)).ValueOrDie(), 0u);
  EXPECT_EQ(live->epoch(), 3u);

  LiveTable::Stats stats = live->stats();
  EXPECT_EQ(stats.rows_appended, 500u);
  EXPECT_EQ(stats.chunks_appended, 2u);
  EXPECT_EQ(stats.delta_chunks, 2u);
  EXPECT_GT(stats.delta_bytes, 0u);
}

TEST_F(LiveTableTest, CreateRejectsConsolidatedBase) {
  BdccTable base = Build(tables_.at("F"));
  SelfTuneOptions tune;
  tune.efficient_access_bytes = 1 << 20;  // every group is "small"
  tune.min_group_fraction = 1.0;
  auto stats = ConsolidateSmallGroups(&base, tune).ValueOrDie();
  ASSERT_GT(stats.rows_copied, 0u);  // physical order != clustered order now
  Resolver resolver(&tables_, &catalog_);
  auto refused = LiveTable::Create(std::move(base), &resolver);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument())
      << refused.status().ToString();
}

TEST_F(LiveTableTest, SnapshotsPinTheirEpoch) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(1, 300)).ok());

  auto pinned = live->OpenSnapshot();
  EXPECT_EQ(pinned->epoch, 2u);
  ASSERT_EQ(pinned->chunks.size(), 1u);
  const BdccTable* pinned_base = pinned->base.get();
  const DeltaChunk* pinned_chunk = pinned->chunks[0].get();

  // Appends and merges publish new epochs; the pinned snapshot is frozen.
  ASSERT_TRUE(live->Append(MakeRows(2, 200)).ok());
  ASSERT_TRUE(live->Merge().ok());
  EXPECT_EQ(live->epoch(), 4u);
  EXPECT_EQ(live->delta_rows(), 0u);

  EXPECT_EQ(pinned->epoch, 2u);
  EXPECT_EQ(pinned->base.get(), pinned_base);
  ASSERT_EQ(pinned->chunks.size(), 1u);
  EXPECT_EQ(pinned->chunks[0].get(), pinned_chunk);
  EXPECT_EQ(pinned->chunks[0]->num_rows(), 300u);

  // The merged epoch got a *new* base version.
  auto fresh = live->OpenSnapshot();
  EXPECT_NE(fresh->base.get(), pinned_base);
  EXPECT_TRUE(fresh->chunks.empty());

  LiveTable::Stats stats = live->stats();
  EXPECT_EQ(stats.open_snapshots, 2u);

  // Epochs retire as their last reader closes (epochs 1 and 3 had no
  // readers and retired on publication).
  pinned.reset();
  fresh.reset();
  EXPECT_EQ(live->stats().open_snapshots, 0u);
  EXPECT_EQ(live->stats().epochs_retired, 3u);  // epochs 1, 2, 3
}

TEST_F(LiveTableTest, MergeEqualsSerialBulkAppend) {
  auto live = MakeLive();
  Table extra1 = MakeRows(7, 900);
  Table extra2 = MakeRows(8, 600);
  ASSERT_TRUE(live->Append(extra1).ok());
  ASSERT_TRUE(live->Append(extra2).ok());

  LiveTable::MergeStats merged = live->Merge().ValueOrDie();
  EXPECT_EQ(merged.rows_merged, 1500u);
  EXPECT_EQ(merged.rows_deferred, 0u);
  EXPECT_GT(merged.groups_merged, 0u);
  EXPECT_EQ(live->delta_rows(), 0u);

  BdccTable serial = Build(tables_.at("F"));
  Resolver resolver(&tables_, &catalog_);
  ASSERT_TRUE(AppendToBdccTable(&serial, extra1, resolver).ok());
  ASSERT_TRUE(AppendToBdccTable(&serial, extra2, resolver).ok());

  auto snap = live->OpenSnapshot();
  ExpectTablesEqual(snap->base->data(), serial.data());
  ExpectCountTablesEqual(*snap->base, serial);
}

TEST_F(LiveTableTest, BoundedMergeDefersRowsToResidualChunk) {
  auto live = MakeLive();
  Table extra = MakeRows(9, 1200);
  ASSERT_TRUE(live->Append(extra).ok());

  LiveTable::MergeOptions bounded;
  bounded.max_groups = 1;
  LiveTable::MergeStats pass = live->Merge(bounded).ValueOrDie();
  EXPECT_EQ(pass.groups_merged, 1u);
  EXPECT_GT(pass.rows_merged, 0u);
  EXPECT_GT(pass.rows_deferred, 0u);
  EXPECT_EQ(pass.rows_merged + pass.rows_deferred, 1200u);

  // Deferred rows live in a residual chunk; repeated bounded passes drain
  // the delta completely.
  auto snap = live->OpenSnapshot();
  ASSERT_EQ(snap->chunks.size(), 1u);
  EXPECT_EQ(snap->chunks[0]->num_rows(), pass.rows_deferred);
  snap.reset();

  int passes = 1;
  while (live->delta_rows() > 0) {
    ASSERT_TRUE(live->Merge(bounded).ok());
    ASSERT_LT(++passes, 200);
  }
  EXPECT_GT(passes, 2);

  // The incremental result still equals one serial bulk append.
  BdccTable serial = Build(tables_.at("F"));
  Resolver resolver(&tables_, &catalog_);
  ASSERT_TRUE(AppendToBdccTable(&serial, extra, resolver).ok());
  auto final_snap = live->OpenSnapshot();
  ExpectTablesEqual(final_snap->base->data(), serial.data());
  ExpectCountTablesEqual(*final_snap->base, serial);
}

TEST_F(LiveTableTest, FailedMergeLeavesPriorSnapshotIntact) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(4, 400)).ok());
  uint64_t epoch_before = live->epoch();

  {
    fault::ScopedFaultInjection fault(/*seed=*/3, /*probability=*/1.0,
                                      fault::kDeltaMerge);
    auto failed = live->Merge();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kInternal)
        << failed.status().ToString();
  }
  EXPECT_EQ(live->epoch(), epoch_before);
  EXPECT_EQ(live->delta_rows(), 400u);
  EXPECT_EQ(live->stats().merges_failed, 1u);
  EXPECT_EQ(live->stats().merges_completed, 0u);

  // Retry outside the fault scope succeeds on the same delta.
  LiveTable::MergeStats merged = live->Merge().ValueOrDie();
  EXPECT_EQ(merged.rows_merged, 400u);
  EXPECT_EQ(live->delta_rows(), 0u);
  EXPECT_EQ(live->stats().merges_completed, 1u);
}

TEST_F(LiveTableTest, CancelledMergePublishesNothing) {
  auto live = MakeLive();
  ASSERT_TRUE(live->Append(MakeRows(5, 400)).ok());
  uint64_t epoch_before = live->epoch();

  exec::ExecContext ctx(nullptr);
  ctx.control()->RequestCancel();
  auto cancelled = live->Merge(LiveTable::MergeOptions(), &ctx);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();
  EXPECT_EQ(live->epoch(), epoch_before);
  EXPECT_EQ(live->delta_rows(), 400u);
}

TEST_F(LiveTableTest, AppendFaultAndBudgetLeaveStateUnchanged) {
  resolver_ = std::make_unique<Resolver>(&tables_, &catalog_);
  LiveTable::Options options;
  options.delta_memory_limit = 1;  // below any sealed chunk
  auto live =
      LiveTable::Create(Build(tables_.at("F")), resolver_.get(), options)
          .ValueOrDie();

  auto refused = live->Append(MakeRows(6, 100));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  EXPECT_EQ(live->epoch(), 1u);
  EXPECT_EQ(live->delta_rows(), 0u);

  auto unlimited = MakeLive();
  {
    fault::ScopedFaultInjection fault(/*seed=*/13, /*probability=*/1.0,
                                      fault::kDeltaAppend);
    auto failed = unlimited->Append(MakeRows(6, 100));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  }
  EXPECT_EQ(unlimited->epoch(), 1u);
  EXPECT_EQ(unlimited->Append(MakeRows(6, 100)).ValueOrDie(), 100u);
}

}  // namespace
}  // namespace delta
}  // namespace bdcc
