// Shared fixture for the delta subsystem tests: a 64-bin dimension over a
// small fact table (with a low-cardinality string column so chunk-local
// dictionaries get exercised), plus batch generators and a resolver.
#ifndef BDCC_TESTS_DELTA_DELTA_FIXTURE_H_
#define BDCC_TESTS_DELTA_DELTA_FIXTURE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace bdcc {
namespace delta {

class DeltaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.AddTable({"DIM", {{"d_key", TypeId::kInt32}}, {"d_key"}})
        .AbortIfNotOK();
    catalog_
        .AddTable({"F",
                   {{"f_d", TypeId::kInt32},
                    {"f_payload", TypeId::kInt64},
                    {"f_tag", TypeId::kString}},
                   {}})
        .AbortIfNotOK();
    catalog_.AddForeignKey({"FK_F_D", "F", {"f_d"}, "DIM", {"d_key"}})
        .AbortIfNotOK();
    Table dim("DIM");
    Column dk(TypeId::kInt32);
    for (int i = 0; i < 64; ++i) dk.AppendInt32(i);
    dim.AddColumn("d_key", std::move(dk)).AbortIfNotOK();
    tables_.emplace("DIM", std::move(dim));

    tables_.emplace("F", MakeRows(0, 5000));
    dimension_ = std::make_shared<const Dimension>(
        binning::CreateRangeDimension("D", "DIM", "d_key", 0, 63, 6)
            .ValueOrDie());
  }

  // Deterministic batch of `n` fact rows; distinct seeds give distinct
  // payloads. Tag strings rotate through 8 values per seed, so every batch
  // interns a partially-disjoint dictionary.
  Table MakeRows(int64_t seed, int n) const {
    Rng rng(100 + seed);
    Table f("F");
    Column fd(TypeId::kInt32), payload(TypeId::kInt64), tag(TypeId::kString);
    for (int i = 0; i < n; ++i) {
      fd.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 63)));
      payload.AppendInt64(seed * 1000000 + i);
      tag.AppendString("tag_" + std::to_string(seed % 3) + "_" +
                       std::to_string(i % 8));
    }
    f.AddColumn("f_d", std::move(fd)).AbortIfNotOK();
    f.AddColumn("f_payload", std::move(payload)).AbortIfNotOK();
    f.AddColumn("f_tag", std::move(tag)).AbortIfNotOK();
    return f;
  }

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* t, const catalog::Catalog* c)
        : t_(t), c_(c) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = t_->find(name);
      if (it == t_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return c_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* t_;
    const catalog::Catalog* c_;
  };

  BdccTable Build(const Table& source) const {
    std::vector<DimensionUse> uses(1);
    uses[0].dimension = dimension_;
    uses[0].path.fk_ids = {"FK_F_D"};
    Resolver resolver(&tables_, &catalog_);
    BdccBuildOptions options;
    options.tuning.efficient_access_bytes = 256;
    return BuildBdccTable(source.Clone(), uses, resolver, options)
        .ValueOrDie();
  }

  catalog::Catalog catalog_;
  std::map<std::string, Table> tables_;
  DimensionPtr dimension_;
};

}  // namespace delta
}  // namespace bdcc

#endif  // BDCC_TESTS_DELTA_DELTA_FIXTURE_H_
