// google-benchmark microbenchmarks for the paper's benefit (iii): join
// acceleration and memory reduction via sandwich operators. Joins two
// co-clustered tables with a plain hash join vs. a sandwich hash join and
// reports time plus peak build memory. The parallel variants sweep
// --threads=N (one JSON row per thread count: the join speedup curve) using
// group-id-chunked sandwich joins and shared-table parallel probes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bdcc/scatter_scan.h"
#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/bits.h"
#include "common/rng.h"
#include "common/task_scheduler.h"
#include "exec/hash_join.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/sandwich_join.h"
#include "exec/scan.h"

namespace {

using namespace bdcc;  // NOLINT

// DIM(dk, dval) clustered on D; FACT(fk -> dk, payload) co-clustered on
// the same dimension over FK_F_D.
struct Fixture {
  catalog::Catalog catalog;
  std::map<std::string, Table> base;
  std::unique_ptr<BdccTable> fact, dim;

  class Resolver : public TableResolver {
   public:
    Resolver(const std::map<std::string, Table>* tables,
             const catalog::Catalog* cat)
        : tables_(tables), cat_(cat) {}
    Result<const Table*> GetTable(const std::string& name) const override {
      auto it = tables_->find(name);
      if (it == tables_->end()) return Status::NotFound(name);
      return &it->second;
    }
    Result<const catalog::ForeignKey*> GetForeignKey(
        const std::string& id) const override {
      return cat_->GetForeignKey(id);
    }

   private:
    const std::map<std::string, Table>* tables_;
    const catalog::Catalog* cat_;
  };

  Fixture() {
    const int64_t kDimRows = 20000;
    const uint64_t kFactRows = 400000;
    catalog::TableDef dim_def{"DIM",
                              {{"dk", TypeId::kInt32},
                               {"dval", TypeId::kInt32}},
                              {"dk"}};
    catalog::TableDef fact_def{"FACT",
                               {{"fk", TypeId::kInt32},
                                {"payload", TypeId::kFloat64}},
                               {}};
    catalog.AddTable(dim_def).AbortIfNotOK();
    catalog.AddTable(fact_def).AbortIfNotOK();
    catalog.AddForeignKey({"FK_F_D", "FACT", {"fk"}, "DIM", {"dk"}})
        .AbortIfNotOK();

    Rng rng(6);
    {
      Table t("DIM");
      Column dk(TypeId::kInt32), dval(TypeId::kInt32);
      for (int64_t i = 0; i < kDimRows; ++i) {
        dk.AppendInt32(static_cast<int32_t>(i));
        dval.AppendInt32(static_cast<int32_t>(rng.Uniform(0, 9999)));
      }
      t.AddColumn("dk", std::move(dk)).AbortIfNotOK();
      t.AddColumn("dval", std::move(dval)).AbortIfNotOK();
      base.emplace("DIM", std::move(t));
    }
    {
      Table t("FACT");
      Column fk(TypeId::kInt32), payload(TypeId::kFloat64);
      for (uint64_t i = 0; i < kFactRows; ++i) {
        fk.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kDimRows - 1)));
        payload.AppendFloat64(rng.NextDouble());
      }
      t.AddColumn("fk", std::move(fk)).AbortIfNotOK();
      t.AddColumn("payload", std::move(payload)).AbortIfNotOK();
      base.emplace("FACT", std::move(t));
    }

    auto d = binning::CreateRangeDimension("D_K", "DIM", "dk", 0,
                                           kDimRows - 1, 8)
                 .ValueOrDie();
    DimensionPtr dp = std::make_shared<const Dimension>(std::move(d));
    Resolver resolver(&base, &catalog);

    // Small AR so both tables keep the dimension's full 8 bits at count
    // granularity; the benchmark sweeps the *shared* width explicitly.
    BdccBuildOptions build;
    build.tuning.efficient_access_bytes = 256;

    std::vector<DimensionUse> dim_uses(1);
    dim_uses[0].dimension = dp;
    dim = std::make_unique<BdccTable>(
        BuildBdccTable(base.at("DIM").Clone(), dim_uses, resolver, build)
            .ValueOrDie());

    std::vector<DimensionUse> fact_uses(1);
    fact_uses[0].dimension = dp;
    fact_uses[0].path.fk_ids = {"FK_F_D"};
    fact = std::make_unique<BdccTable>(
        BuildBdccTable(base.at("FACT").Clone(), fact_uses, resolver, build)
            .ValueOrDie());
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

exec::OperatorPtr GroupedScan(const BdccTable& bt,
                              std::vector<std::string> cols, int shared) {
  auto ranges = PlanScatterScan(bt, {0}).ValueOrDie();
  return std::make_unique<exec::BdccScan>(
      &bt, std::move(cols), std::move(ranges),
      std::vector<exec::ScanPredicate>{},
      std::vector<exec::GroupSpec>{{0, shared}});
}

// Sandwich alignment: both sides must tag with the same width, bounded by
// what each table's self-tuned count granularity kept of the dimension.
int ClampShared(const Fixture& f, int requested) {
  return std::min({requested, bits::Ones(f.fact->ReducedMask(0)),
                   bits::Ones(f.dim->ReducedMask(0))});
}

void BM_HashJoin(benchmark::State& state) {
  Fixture& f = F();
  uint64_t peak = 0;
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    auto left = std::make_unique<exec::BdccScan>(
        f.fact.get(), std::vector<std::string>{"fk", "payload"},
        PlanNaturalScan(*f.fact));
    auto right = std::make_unique<exec::BdccScan>(
        f.dim.get(), std::vector<std::string>{"dk", "dval"},
        PlanNaturalScan(*f.dim));
    exec::HashJoin join(std::move(left), std::move(right), {"fk"}, {"dk"},
                        exec::JoinType::kInner);
    auto out = exec::CollectAll(&join, &ctx).ValueOrDie();
    benchmark::DoNotOptimize(out.num_rows);
    peak = std::max(peak, ctx.memory()->peak_bytes());
  }
  state.counters["peak_mem_kb"] = static_cast<double>(peak) / 1024.0;
}
BENCHMARK(BM_HashJoin);

void BM_SandwichJoin(benchmark::State& state) {
  Fixture& f = F();
  int shared = ClampShared(f, static_cast<int>(state.range(0)));
  uint64_t peak = 0;
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    exec::SandwichHashJoin join(
        GroupedScan(*f.fact, {"fk", "payload"}, shared),
        GroupedScan(*f.dim, {"dk", "dval"}, shared), {"fk"}, {"dk"},
        exec::JoinType::kInner);
    auto out = exec::CollectAll(&join, &ctx).ValueOrDie();
    benchmark::DoNotOptimize(out.num_rows);
    peak = std::max(peak, ctx.memory()->peak_bytes());
  }
  state.counters["peak_mem_kb"] = static_cast<double>(peak) / 1024.0;
}
// Partition counts 2^2 .. 2^8: more shared bits -> smaller per-group build.
BENCHMARK(BM_SandwichJoin)->Arg(2)->Arg(5)->Arg(8);

// Scan over only the ranges whose group id lies in [gid_lo, gid_hi] — the
// same chunking the planner uses for parallel sandwich pipelines.
exec::OperatorPtr GroupedScanChunk(const BdccTable& bt,
                                   std::vector<std::string> cols, int shared,
                                   int64_t gid_lo, int64_t gid_hi) {
  std::vector<exec::GroupSpec> grouping{{0, shared}};
  auto all = PlanScatterScan(bt, {0}).ValueOrDie();
  std::vector<GroupRange> subset;
  for (const GroupRange& r : all) {
    int64_t g = exec::GroupIdForKey(bt, grouping, r.key);
    if (g >= gid_lo && g <= gid_hi) subset.push_back(r);
  }
  return std::make_unique<exec::BdccScan>(
      &bt, std::move(cols), std::move(subset),
      std::vector<exec::ScanPredicate>{}, grouping);
}

// Group-id-chunked parallel sandwich join: each clone joins one contiguous
// span of the shared-dimension group ids end to end.
void RunSandwichJoinParallel(benchmark::State& state, int threads) {
  Fixture& f = F();
  int shared = ClampShared(f, 8);
  std::vector<exec::GroupSpec> grouping{{0, shared}};
  std::vector<int64_t> gids;
  for (const GroupRange& r : PlanScatterScan(*f.fact, {0}).ValueOrDie()) {
    gids.push_back(exec::GroupIdForKey(*f.fact, grouping, r.key));
  }
  std::sort(gids.begin(), gids.end());
  gids.erase(std::unique(gids.begin(), gids.end()), gids.end());
  size_t chunks = std::min<size_t>(threads, gids.size());
  size_t per = (gids.size() + chunks - 1) / chunks;

  uint64_t peak = 0;
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    exec::ChainFactory factory =
        [&](size_t i, size_t n) -> Result<exec::OperatorPtr> {
      (void)n;
      size_t b = i * per, e = std::min(gids.size(), b + per);
      return exec::OperatorPtr(std::make_unique<exec::SandwichHashJoin>(
          GroupedScanChunk(*f.fact, {"fk", "payload"}, shared, gids[b],
                           gids[e - 1]),
          GroupedScanChunk(*f.dim, {"dk", "dval"}, shared, gids[b],
                           gids[e - 1]),
          std::vector<std::string>{"fk"}, std::vector<std::string>{"dk"},
          exec::JoinType::kInner));
    };
    exec::ParallelUnion join(factory, chunks,
                             common::TaskScheduler::Shared());
    auto out = exec::CollectAll(&join, &ctx).ValueOrDie();
    benchmark::DoNotOptimize(out.num_rows);
    peak = std::max(peak, ctx.memory()->peak_bytes());
  }
  state.counters["peak_mem_kb"] = static_cast<double>(peak) / 1024.0;
  state.counters["threads"] = threads;
}

// Shared-build-table hash join with morsel-parallel probe clones.
void RunHashJoinParallelProbe(benchmark::State& state, int threads) {
  Fixture& f = F();
  auto probe_ranges = std::make_shared<const std::vector<GroupRange>>(
      PlanNaturalScan(*f.fact));
  auto morsels = std::make_shared<const std::vector<exec::Morsel>>(
      exec::MakeRangeMorsels(*probe_ranges, 16384));
  uint64_t peak = 0;
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    exec::ChainFactory probe_factory =
        [&](size_t i, size_t n) -> Result<exec::OperatorPtr> {
      auto scan = std::make_unique<exec::BdccScan>(
          f.fact.get(), std::vector<std::string>{"fk", "payload"},
          *probe_ranges);
      scan->RestrictToMorsels(exec::MorselSet{morsels, i, n});
      return exec::OperatorPtr(std::move(scan));
    };
    exec::ParallelHashJoin join(
        probe_factory, threads,
        std::make_unique<exec::BdccScan>(
            f.dim.get(), std::vector<std::string>{"dk", "dval"},
            PlanNaturalScan(*f.dim)),
        {"fk"}, {"dk"}, exec::JoinType::kInner,
        common::TaskScheduler::Shared());
    auto out = exec::CollectAll(&join, &ctx).ValueOrDie();
    benchmark::DoNotOptimize(out.num_rows);
    peak = std::max(peak, ctx.memory()->peak_bytes());
  }
  state.counters["peak_mem_kb"] = static_cast<double>(peak) / 1024.0;
  state.counters["threads"] = threads;
}

// ---- Build-side cardinality x threads sweep (plain JSON rows) ----------
//
// Times the hash-join *build* phase separately from the probe phase, for
// the serial build vs. the radix-partitioned parallel build, across build
// cardinalities and thread counts. One JsonLine row per config feeds the
// BENCH_pr5.json perf-trajectory baseline and the CI bench-regression diff.
void RunBuildSweep(int max_threads) {
  const uint64_t kProbeRows = 1u << 20;
  uint64_t max_build = 1u << 20;
  if (const char* env = std::getenv("BDCC_BENCH_BUILD_ROWS")) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) max_build = v;
  }
  std::vector<uint64_t> sizes;
  for (uint64_t s = 1u << 16; s < max_build; s *= 4) sizes.push_back(s);
  sizes.push_back(max_build);

  for (uint64_t build_rows : sizes) {
    Table build_t("BUILD");
    {
      Column bk(TypeId::kInt32), bval(TypeId::kInt64);
      for (uint64_t i = 0; i < build_rows; ++i) {
        // Multiplicative shuffle so insertion order is not key order.
        bk.AppendInt32(static_cast<int32_t>((i * 2654435761u) % build_rows));
        bval.AppendInt64(static_cast<int64_t>(i));
      }
      build_t.AddColumn("bk", std::move(bk)).AbortIfNotOK();
      build_t.AddColumn("bval", std::move(bval)).AbortIfNotOK();
    }
    Table probe_t("PROBE");
    {
      Rng rng(17);
      Column fk(TypeId::kInt32), pval(TypeId::kFloat64);
      for (uint64_t i = 0; i < kProbeRows; ++i) {
        fk.AppendInt32(static_cast<int32_t>(
            rng.Uniform(0, static_cast<int64_t>(build_rows) - 1)));
        pval.AppendFloat64(rng.NextDouble());
      }
      probe_t.AddColumn("fk", std::move(fk)).AbortIfNotOK();
      probe_t.AddColumn("pval", std::move(pval)).AbortIfNotOK();
    }
    auto build_morsels = std::make_shared<const std::vector<exec::Morsel>>(
        exec::MakeRowMorsels(build_rows, 0, 16384));
    auto probe_morsels = std::make_shared<const std::vector<exec::Morsel>>(
        exec::MakeRowMorsels(kProbeRows, 0, 16384));

    for (int threads : bdcc::bench::ThreadCounts(max_threads)) {
      for (bool partitioned : {false, true}) {
        int bits = exec::ChoosePartitionBits(build_rows, threads);
        double best_build_ms = 0, best_probe_ms = 0;
        uint64_t out_rows = 0;
        for (int rep = 0; rep < 3; ++rep) {
          exec::ExecContext ctx(nullptr);
          exec::ChainFactory probe_factory =
              [&](size_t i, size_t n) -> Result<exec::OperatorPtr> {
            auto scan = std::make_unique<exec::PlainScan>(
                &probe_t, std::vector<std::string>{"fk", "pval"});
            scan->RestrictToMorsels(exec::MorselSet{probe_morsels, i, n});
            return exec::OperatorPtr(std::move(scan));
          };
          exec::ParallelHashJoin join(
              probe_factory, threads,
              std::make_unique<exec::PlainScan>(
                  &build_t, std::vector<std::string>{"bk", "bval"}),
              {"fk"}, {"bk"}, exec::JoinType::kInner,
              common::TaskScheduler::Shared());
          if (partitioned) {
            exec::ChainFactory build_factory =
                [&](size_t i, size_t n) -> Result<exec::OperatorPtr> {
              auto scan = std::make_unique<exec::PlainScan>(
                  &build_t, std::vector<std::string>{"bk", "bval"});
              scan->RestrictToMorsels(exec::MorselSet{build_morsels, i, n});
              return exec::OperatorPtr(std::move(scan));
            };
            join.EnableParallelBuild(build_factory, bits);
          }
          auto t0 = std::chrono::steady_clock::now();
          join.Open(&ctx).AbortIfNotOK();
          auto t1 = std::chrono::steady_clock::now();
          uint64_t rows = 0;
          while (true) {
            exec::Batch b = join.Next(&ctx).ValueOrDie();
            if (b.empty()) break;
            rows += b.num_rows;
          }
          auto t2 = std::chrono::steady_clock::now();
          join.Close(&ctx);
          double build_ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          double probe_ms =
              std::chrono::duration<double, std::milli>(t2 - t1).count();
          if (rep == 0 || build_ms < best_build_ms) best_build_ms = build_ms;
          if (rep == 0 || probe_ms < best_probe_ms) best_probe_ms = probe_ms;
          out_rows = rows;
        }
        bdcc::bench::JsonLine("micro_join_build_sweep")
            .Str("mode", partitioned ? "partitioned" : "serial")
            // Wall-clock speedups need real cores; recording the host's
            // count keeps cross-machine baseline diffs interpretable.
            .Num("host_cpus", std::thread::hardware_concurrency())
            .Num("build_rows", static_cast<double>(build_rows))
            .Num("probe_rows", static_cast<double>(kProbeRows))
            .Num("threads", threads)
            .Num("partitions", partitioned ? (1 << bits) : 1)
            .Num("build_ms", best_build_ms)
            .Num("probe_ms", best_probe_ms)
            .Num("build_mrows_per_s",
                 build_rows / 1e6 / (best_build_ms / 1e3))
            .Num("probe_mrows_per_s",
                 kProbeRows / 1e6 / (best_probe_ms / 1e3))
            .Num("out_rows", static_cast<double>(out_rows))
            .Emit();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int max_threads = bdcc::bench::StripThreadsFlag(&argc, argv, 4);
  RunBuildSweep(max_threads);
  for (int t : bdcc::bench::ThreadCounts(max_threads)) {
    benchmark::RegisterBenchmark(
        ("BM_SandwichJoinParallel/threads:" + std::to_string(t)).c_str(),
        [t](benchmark::State& s) { RunSandwichJoinParallel(s, t); });
    benchmark::RegisterBenchmark(
        ("BM_HashJoinParallelProbe/threads:" + std::to_string(t)).c_str(),
        [t](benchmark::State& s) { RunHashJoinParallelProbe(s, t); });
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
