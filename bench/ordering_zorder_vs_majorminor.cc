// Reproduces the paper's "Other Orderings" self-comparison: the automatic
// round-robin (Z-order) interleaving versus a hand-created major-minor
// setup with the same dimensions and bit counts, favoring the time
// dimension as major. Paper result: comparable totals, Z-order slightly
// faster (284s vs 291s) — and Z-order needs no DBA decision.
#include <cstdio>

#include "bench/bench_util.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

double RunAll(tpch::TpchDb* db, double* io_ms_out) {
  double total = 0, io = 0;
  for (int q = 1; q <= tpch::kNumTpchQueries; ++q) {
    QueryRun run = RunQueryCold(db, opt::Scheme::kBdcc, q);
    if (!run.ok) {
      std::fprintf(stderr, "Q%d failed: %s\n", q, run.error.c_str());
      std::exit(1);
    }
    total += run.wall_ms;
    io += run.sim_io_ms;
  }
  *io_ms_out = io;
  return total;
}

}  // namespace

int main() {
  double sf = BenchScaleFactor();
  std::printf("== Other Orderings: Z-order vs major-minor (SF %.3f) ==\n",
              sf);

  double zorder_io = 0, mm_io = 0;
  double zorder_ms, mm_ms;
  {
    tpch::TpchDbOptions options;
    options.scale_factor = sf;
    options.build_plain = false;
    options.build_pk = false;
    options.advisor.build.policy = interleave::Policy::kRoundRobinPerUse;
    auto db = tpch::TpchDb::Create(options).ValueOrDie();
    zorder_ms = RunAll(db.get(), &zorder_io);
  }
  {
    tpch::TpchDbOptions options;
    options.scale_factor = sf;
    options.build_plain = false;
    options.build_pk = false;
    options.advisor.build.policy = interleave::Policy::kMajorMinor;
    auto db = tpch::TpchDb::Create(options).ValueOrDie();
    mm_ms = RunAll(db.get(), &mm_io);
  }
  std::printf("%-22s %12s %12s\n", "setup", "wall(ms)", "sim-I/O(ms)");
  std::printf("%-22s %12.2f %12.2f\n", "z-order (automatic)", zorder_ms,
              zorder_io);
  std::printf("%-22s %12.2f %12.2f\n", "major-minor (manual)", mm_ms, mm_io);
  JsonLine("ordering_zorder_vs_majorminor")
      .Str("setup", "zorder")
      .Num("wall_ms", zorder_ms)
      .Num("sim_io_ms", zorder_io)
      .Emit();
  JsonLine("ordering_zorder_vs_majorminor")
      .Str("setup", "majorminor")
      .Num("wall_ms", mm_ms)
      .Num("sim_io_ms", mm_io)
      .Emit();
  std::printf(
      "\npaper (SF100): automatic 284s vs manual 291s (comparable, "
      "automatic slightly ahead)\nmeasured ratio: %.3f\n",
      mm_ms / zorder_ms);
  return 0;
}
