// Reproduces the paper's Section IV dimension table:
//
//   BDCC dimension D  bits(D)  table T(D)  key K(D)
//   D_NATION          5        NATION      n_regionkey,n_nationkey
//   D_PART            13       PART        p_partkey
//   D_DATE            13       ORDERS      o_orderdate
//
// derived by Algorithm 2 from the DDL hints alone. bits(D_PART) is
// scale-dependent (ceil(log2 #parts), capped at 13); at the paper's SF100
// it caps at 13, at small SF it is log2 of the part count.
#include <cstdio>

#include "advisor/report.h"
#include "bench/bench_util.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

int main() {
  double sf = BenchScaleFactor(0.05);
  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.build_plain = false;
  options.build_pk = false;
  auto db = tpch::TpchDb::Create(options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("== Section IV dimension table (SF %.3f) ==\n\n%s\n", sf,
              advisor::RenderDimensionTable(db.value()->design()).c_str());
  for (const auto& dim : db.value()->design().dimensions) {
    JsonLine("table_dimensions")
        .Str("dimension", dim->name())
        .Num("sf", sf)
        .Num("bits", dim->bits())
        .Emit();
  }
  std::printf(
      "paper (SF100): D_NATION 5 bits (NATION: n_regionkey,n_nationkey)\n"
      "               D_PART  13 bits (PART: p_partkey)\n"
      "               D_DATE  13 bits (ORDERS: o_orderdate)\n");
  return 0;
}
