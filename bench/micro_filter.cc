// Selectivity sweep for the scan->filter pipeline: the selection-vector
// path (scan-level predicate pushdown, late materialization) vs the legacy
// compact path (full batch copy out of the scan, then a Filter that
// re-copies survivors with Gather). Swept 0.1% -> 99% selectivity and over
// --threads=N; one JSON row per (path, selectivity, threads) config lands
// in --benchmark_out, so speedup curves are directly plottable
// (BENCH_pr3.json commits the sel-vs-legacy trajectory for this PR).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/task_scheduler.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/morsel.h"
#include "exec/scan.h"

namespace {

using namespace bdcc;  // NOLINT

constexpr uint64_t kRows = 500000;
constexpr int64_t kDomain = 1 << 20;

struct Fixture {
  Table table{"T"};

  Fixture() {
    Rng rng(11);
    Column k(TypeId::kInt32), v(TypeId::kFloat64), w(TypeId::kInt64);
    for (uint64_t i = 0; i < kRows; ++i) {
      k.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kDomain - 1)));
      v.AppendFloat64(rng.NextDouble());
      w.AppendInt64(static_cast<int64_t>(i));
    }
    table.AddColumn("k", std::move(k)).AbortIfNotOK();
    table.AddColumn("v", std::move(v)).AbortIfNotOK();
    table.AddColumn("w", std::move(w)).AbortIfNotOK();
    table.BuildZoneMaps(1024);
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

// Selectivity in tenths of a percent (permille): hi = domain * permille/1000.
std::vector<exec::ScanPredicate> PredsFor(int64_t permille) {
  int64_t hi = std::max<int64_t>(1, kDomain * permille / 1000);
  return {{"k", ValueRange{Value::Int32(0),
                           Value::Int32(static_cast<int32_t>(hi - 1))}}};
}

exec::ExprPtr RowExprFor(int64_t permille) {
  int64_t hi = std::max<int64_t>(1, kDomain * permille / 1000);
  return exec::Le(exec::Col("k"), exec::Lit(Value::Int32(
                                      static_cast<int32_t>(hi - 1))));
}

// Drain one scan->filter pipeline clone, consuming selected rows sel-aware
// (the way downstream operators do).
uint64_t DrainPipeline(exec::Operator* op, exec::ExecContext* ctx) {
  op->Open(ctx).AbortIfNotOK();
  uint64_t sum = 0;
  while (true) {
    auto b = op->Next(ctx).ValueOrDie();
    if (b.empty()) break;
    const exec::ColumnVector& k = b.columns[0];
    for (size_t i = 0; i < b.num_rows; ++i) sum += k.i32[b.RowAt(i)];
    op->Recycle(std::move(b));
  }
  op->Close(ctx);
  return sum;
}

// One clone of the measured pipeline. `sel_path` selects between the scan
// pushdown + selection vectors and the seed's copy-then-Gather shape.
exec::OperatorPtr MakePipeline(int64_t permille, bool sel_path,
                               std::shared_ptr<const std::vector<exec::Morsel>>
                                   morsels,
                               size_t instance, size_t total) {
  auto scan = std::make_unique<exec::PlainScan>(&F().table,
                                                std::vector<std::string>{
                                                    "k", "v", "w"},
                                                PredsFor(permille));
  scan->EnableRowFilter(sel_path);
  if (morsels != nullptr) {
    scan->RestrictToMorsels(exec::MorselSet{morsels, instance, total});
  }
  if (sel_path) return scan;  // predicates fully enforced inside the scan
  return std::make_unique<exec::Filter>(std::move(scan), RowExprFor(permille));
}

void RunMicroFilter(benchmark::State& state, int64_t permille, bool sel_path,
                    int threads) {
  auto morsels =
      threads > 1
          ? std::make_shared<const std::vector<exec::Morsel>>(
                exec::MakeRowMorsels(kRows, 1024, 16384))
          : nullptr;
  for (auto _ : state) {
    uint64_t total = 0;
    if (threads == 1) {
      exec::ExecContext ctx(nullptr);
      ctx.set_sel_enabled(sel_path);
      auto op = MakePipeline(permille, sel_path, nullptr, 0, 1);
      total = DrainPipeline(op.get(), &ctx);
    } else {
      std::vector<uint64_t> sums(threads, 0);
      common::TaskScheduler::Shared()->ParallelFor(threads, [&](size_t i) {
        exec::ExecContext ctx(nullptr);
        ctx.set_sel_enabled(sel_path);
        auto op = MakePipeline(permille, sel_path, morsels, i,
                               static_cast<size_t>(threads));
        sums[i] = DrainPipeline(op.get(), &ctx);
      });
      for (uint64_t s : sums) total += s;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["threads"] = threads;
  state.counters["sel_permille"] = static_cast<double>(permille);
  state.counters["sel_path"] = sel_path ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  int max_threads = bdcc::bench::StripThreadsFlag(&argc, argv, 4);
  const int64_t permilles[] = {1, 10, 100, 500, 990};  // 0.1% .. 99%
  for (int t : bdcc::bench::ThreadCounts(max_threads)) {
    for (int64_t p : permilles) {
      for (bool sel : {false, true}) {
        std::string name = std::string("BM_MicroFilter/") +
                           (sel ? "sel" : "legacy") +
                           "/permille:" + std::to_string(p) +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(), [p, sel, t](benchmark::State& s) {
              RunMicroFilter(s, p, sel, t);
            });
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
