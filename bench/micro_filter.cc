// Selectivity sweep for the scan->filter pipeline: the selection-vector
// path (scan-level predicate pushdown, late materialization) vs the legacy
// compact path (full batch copy out of the scan, then a Filter that
// re-copies survivors with Gather). Swept 0.1% -> 99% selectivity and over
// --threads=N; one JSON row per (path, selectivity, threads) config lands
// in --benchmark_out, so speedup curves are directly plottable
// (BENCH_pr3.json commits the sel-vs-legacy trajectory for this PR).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/task_scheduler.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/morsel.h"
#include "exec/scan.h"

namespace {

using namespace bdcc;  // NOLINT

constexpr uint64_t kRows = 500000;
constexpr int64_t kDomain = 1 << 20;

struct Fixture {
  Table table{"T"};

  Fixture() {
    Rng rng(11);
    Column k(TypeId::kInt32), v(TypeId::kFloat64), w(TypeId::kInt64);
    for (uint64_t i = 0; i < kRows; ++i) {
      k.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kDomain - 1)));
      v.AppendFloat64(rng.NextDouble());
      w.AppendInt64(static_cast<int64_t>(i));
    }
    table.AddColumn("k", std::move(k)).AbortIfNotOK();
    table.AddColumn("v", std::move(v)).AbortIfNotOK();
    table.AddColumn("w", std::move(w)).AbortIfNotOK();
    table.BuildZoneMaps(1024);
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

// Selectivity in tenths of a percent (permille): hi = domain * permille/1000.
std::vector<exec::ScanPredicate> PredsFor(int64_t permille) {
  int64_t hi = std::max<int64_t>(1, kDomain * permille / 1000);
  return {{"k", ValueRange{Value::Int32(0),
                           Value::Int32(static_cast<int32_t>(hi - 1))}}};
}

exec::ExprPtr RowExprFor(int64_t permille) {
  int64_t hi = std::max<int64_t>(1, kDomain * permille / 1000);
  return exec::Le(exec::Col("k"), exec::Lit(Value::Int32(
                                      static_cast<int32_t>(hi - 1))));
}

// Drain one scan->filter pipeline clone, consuming selected rows sel-aware
// (the way downstream operators do).
uint64_t DrainPipeline(exec::Operator* op, exec::ExecContext* ctx) {
  op->Open(ctx).AbortIfNotOK();
  uint64_t sum = 0;
  while (true) {
    auto b = op->Next(ctx).ValueOrDie();
    if (b.empty()) break;
    const exec::ColumnVector& k = b.columns[0];
    for (size_t i = 0; i < b.num_rows; ++i) sum += k.i32[b.RowAt(i)];
    op->Recycle(std::move(b));
  }
  op->Close(ctx);
  return sum;
}

// One clone of the measured pipeline. `sel_path` selects between the scan
// pushdown + selection vectors and the seed's copy-then-Gather shape.
exec::OperatorPtr MakePipeline(int64_t permille, bool sel_path,
                               std::shared_ptr<const std::vector<exec::Morsel>>
                                   morsels,
                               size_t instance, size_t total) {
  auto scan = std::make_unique<exec::PlainScan>(&F().table,
                                                std::vector<std::string>{
                                                    "k", "v", "w"},
                                                PredsFor(permille));
  scan->EnableRowFilter(sel_path);
  if (morsels != nullptr) {
    scan->RestrictToMorsels(exec::MorselSet{morsels, instance, total});
  }
  if (sel_path) return scan;  // predicates fully enforced inside the scan
  return std::make_unique<exec::Filter>(std::move(scan), RowExprFor(permille));
}

void RunMicroFilter(benchmark::State& state, int64_t permille, bool sel_path,
                    int threads) {
  auto morsels =
      threads > 1
          ? std::make_shared<const std::vector<exec::Morsel>>(
                exec::MakeRowMorsels(kRows, 1024, 16384))
          : nullptr;
  for (auto _ : state) {
    uint64_t total = 0;
    if (threads == 1) {
      exec::ExecContext ctx(nullptr);
      ctx.set_sel_enabled(sel_path);
      auto op = MakePipeline(permille, sel_path, nullptr, 0, 1);
      total = DrainPipeline(op.get(), &ctx);
    } else {
      std::vector<uint64_t> sums(threads, 0);
      common::TaskScheduler::Shared()->ParallelFor(threads, [&](size_t i) {
        exec::ExecContext ctx(nullptr);
        ctx.set_sel_enabled(sel_path);
        auto op = MakePipeline(permille, sel_path, morsels, i,
                               static_cast<size_t>(threads));
        sums[i] = DrainPipeline(op.get(), &ctx);
      });
      for (uint64_t s : sums) total += s;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["threads"] = threads;
  state.counters["sel_permille"] = static_cast<double>(permille);
  state.counters["sel_path"] = sel_path ? 1 : 0;
}

// ---- Per-codec direct-execution sweep ----
//
// Four tables whose filtered lane encodes to a known codec: wide-random
// values (raw blocks), long runs (RLE), a narrow random domain
// (FOR-bitpack), and a run-shaped low-cardinality string column whose dict
// codes RLE-encode. Every zone is seeded with one domain-min and
// one domain-max sentinel so zone maps can neither prune nor prove
// all-match — the sweep measures span *evaluation*, not zone pruning
// (micro_scan's zero-copy sweep covers the pruning story). Each table is
// swept codec x selectivity x threads x EncodedEval mode — kDecode is the
// flat-decode baseline the direct path (kAuto) is judged against — and
// every config emits one JsonLine (BENCH_pr6.json commits the trajectory).

constexpr uint64_t kCodecRows = 400000;
constexpr int64_t kNarrowDomain = 1 << 20;
constexpr int kNumTags = 100;
constexpr uint64_t kCodecZoneRows = 4096;

struct CodecTable {
  const char* codec;
  Table table;
  bool string_key = false;
};

std::vector<CodecTable>& CodecTables() {
  static std::vector<CodecTable>* tables = [] {
    auto* out = new std::vector<CodecTable>();
    auto build = [](const char* name, bool string_key, auto&& fill_key) {
      Rng rng(17);
      Table t(name);
      Column k(string_key ? TypeId::kString : TypeId::kInt32);
      Column w(TypeId::kInt64);
      for (uint64_t i = 0; i < kCodecRows; ++i) {
        fill_key(&k, &rng, i % kCodecZoneRows);
        w.AppendInt64(static_cast<int64_t>(i));
      }
      t.AddColumn("k", std::move(k)).AbortIfNotOK();
      t.AddColumn("w", std::move(w)).AbortIfNotOK();
      t.BuildZoneMaps(kCodecZoneRows);
      t.BuildEncodedLanes();
      return CodecTable{name, std::move(t), string_key};
    };
    out->push_back(build("raw", false, [](Column* k, Rng* rng,
                                          uint64_t zone_row) {
      if (zone_row == 0) {
        k->AppendInt32(std::numeric_limits<int32_t>::min());
      } else if (zone_row == 1) {
        k->AppendInt32(std::numeric_limits<int32_t>::max());
      } else {
        k->AppendInt32(static_cast<int32_t>(rng->Next64()));
      }
    }));
    {
      // Runs of 8000..32000 equal values: RLE wins every block, and whole
      // chunks inside one failing run earn kNonePass span verdicts.
      int32_t cur = 0;
      uint64_t left = 0;
      out->push_back(build("rle", false, [cur, left](Column* k, Rng* rng,
                                                     uint64_t zone_row)
                               mutable {
        if (zone_row == 0) {
          k->AppendInt32(-1);  // fails [0,hi] but defeats zone pruning
          return;
        }
        if (zone_row == 1) {
          k->AppendInt32(static_cast<int32_t>(kNarrowDomain - 1));
          return;
        }
        if (left == 0) {
          cur = static_cast<int32_t>(rng->Uniform(0, kNarrowDomain - 1));
          left = static_cast<uint64_t>(rng->Uniform(8000, 32000));
        }
        --left;
        k->AppendInt32(cur);
      }));
    }
    out->push_back(build("bitpack", false, [](Column* k, Rng* rng,
                                              uint64_t zone_row) {
      if (zone_row == 0) {
        k->AppendInt32(-1);  // fails [0,hi] but defeats zone pruning
      } else if (zone_row == 1) {
        k->AppendInt32(static_cast<int32_t>(kNarrowDomain - 1));
      } else {
        k->AppendInt32(
            static_cast<int32_t>(rng->Uniform(0, kNarrowDomain - 1)));
      }
    }));
    {
      // Clustered tags: the dict-code lane arrives in runs, so the verdict
      // table evaluates once per run instead of once per row.
      char tag[16] = "t00";
      uint64_t left = 0;
      out->push_back(build("dict", true, [tag, left](Column* k, Rng* rng,
                                                     uint64_t zone_row)
                               mutable {
        if (zone_row == 0) {
          k->AppendString("a");  // sorts below every tag: fails the range
          return;
        }
        if (zone_row == 1) {
          k->AppendString("zz");  // sorts above every tag
          return;
        }
        if (left == 0) {
          std::snprintf(tag, sizeof(tag), "t%02d",
                        static_cast<int>(rng->Uniform(0, kNumTags - 1)));
          left = static_cast<uint64_t>(rng->Uniform(8000, 32000));
        }
        --left;
        k->AppendString(tag);
      }));
    }
    return out;
  }();
  return *tables;
}

// Predicate selecting ~pct% of `ct`'s rows via a range on "k".
std::vector<exec::ScanPredicate> CodecPredsFor(const CodecTable& ct,
                                               int pct) {
  if (ct.string_key) {
    char hi[16];
    std::snprintf(hi, sizeof(hi), "t%02d", pct * kNumTags / 100 - 1);
    return {{"k", ValueRange{Value::String("t00"), Value::String(hi)}}};
  }
  if (std::string(ct.codec) == "raw") {
    // Uniform over the full int32 domain.
    int64_t lo = std::numeric_limits<int32_t>::min();
    int64_t hi = lo + (int64_t{1} << 32) * pct / 100 - 1;
    return {{"k", ValueRange{Value::Int32(static_cast<int32_t>(lo)),
                             Value::Int32(static_cast<int32_t>(hi))}}};
  }
  int64_t hi = kNarrowDomain * pct / 100 - 1;
  return {{"k", ValueRange{Value::Int32(0),
                           Value::Int32(static_cast<int32_t>(hi))}}};
}

uint64_t DrainCodecScan(const CodecTable& ct, int pct, exec::EncodedEval mode,
                        std::shared_ptr<const std::vector<exec::Morsel>>
                            morsels,
                        size_t instance, size_t total) {
  exec::ExecContext ctx(nullptr);
  ctx.set_sel_enabled(true);
  // Whole-zone chunks: direct mode evaluates sargs one encoded span at a
  // time, so batches smaller than a zone just multiply per-span setup cost.
  ctx.set_batch_size(kCodecZoneRows);
  // Scan only the filtered lane: emission cost is identical across modes,
  // so a narrow projection keeps the sweep focused on span evaluation.
  exec::PlainScan scan(&ct.table, {"k"}, CodecPredsFor(ct, pct));
  scan.EnableRowFilter(true);
  scan.SetEncodedEval(mode);
  if (morsels != nullptr) {
    scan.RestrictToMorsels(exec::MorselSet{morsels, instance, total});
  }
  scan.Open(&ctx).AbortIfNotOK();
  uint64_t sum = 0;
  while (true) {
    auto b = scan.Next(&ctx).ValueOrDie();
    if (b.empty()) break;
    const int32_t* k = b.columns[0].i32_data();
    for (size_t i = 0; i < b.num_rows; ++i) {
      sum += static_cast<uint32_t>(k[b.RowAt(i)]);
    }
    scan.Recycle(std::move(b));
  }
  scan.Close(&ctx);
  return sum;
}

void RunCodecSweep(int max_threads) {
  auto morsels = std::make_shared<const std::vector<exec::Morsel>>(
      exec::MakeRowMorsels(kCodecRows, kCodecZoneRows, 8 * kCodecZoneRows));
  struct Mode {
    const char* name;
    exec::EncodedEval mode;
  };
  const Mode modes[] = {{"flat", exec::EncodedEval::kOff},
                        {"decode", exec::EncodedEval::kDecode},
                        {"direct", exec::EncodedEval::kAuto}};
  for (const CodecTable& ct : CodecTables()) {
    for (int pct : {1, 10, 50}) {
      for (int threads : bdcc::bench::ThreadCounts(max_threads)) {
        for (const Mode& m : modes) {
          double best_ms = 0;
          uint64_t check = 0;
          for (int rep = 0; rep < 3; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            uint64_t total = 0;
            if (threads == 1) {
              total = DrainCodecScan(ct, pct, m.mode, nullptr, 0, 1);
            } else {
              std::vector<uint64_t> sums(threads, 0);
              common::TaskScheduler::Shared()->ParallelFor(
                  threads, [&](size_t i) {
                    sums[i] = DrainCodecScan(ct, pct, m.mode, morsels, i,
                                             static_cast<size_t>(threads));
                  });
              for (uint64_t s : sums) total += s;
            }
            auto t1 = std::chrono::steady_clock::now();
            double ms =
                std::chrono::duration<double, std::milli>(t1 - t0).count();
            if (rep == 0 || ms < best_ms) best_ms = ms;
            check = total;
          }
          bdcc::bench::JsonLine("micro_filter_codec_sweep")
              .Str("codec", ct.codec)
              .Str("simd", bdcc::simd::TierName(bdcc::simd::ActiveTier()))
              // Wall-clock comparisons only mean something on like
              // hardware; the regression checker keys off host_cpus.
              .Num("host_cpus", std::thread::hardware_concurrency())
              .Str("mode", m.name)
              .Num("sel_pct", pct)
              .Num("threads", threads)
              .Num("rows", static_cast<double>(kCodecRows))
              .Num("wall_ms", best_ms)
              .Num("mrows_per_s", kCodecRows / 1e6 / (best_ms / 1e3))
              .Num("checksum", static_cast<double>(check))
              .Emit();
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int max_threads = bdcc::bench::StripThreadsFlag(&argc, argv, 4);
  RunCodecSweep(max_threads);
  const int64_t permilles[] = {1, 10, 100, 500, 990};  // 0.1% .. 99%
  for (int t : bdcc::bench::ThreadCounts(max_threads)) {
    for (int64_t p : permilles) {
      for (bool sel : {false, true}) {
        std::string name = std::string("BM_MicroFilter/") +
                           (sel ? "sel" : "legacy") +
                           "/permille:" + std::to_string(p) +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(
            name.c_str(), [p, sel, t](benchmark::State& s) {
              RunMicroFilter(s, p, sel, t);
            });
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
