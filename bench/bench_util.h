// Shared benchmark harness utilities.
#ifndef BDCC_BENCH_BENCH_UTIL_H_
#define BDCC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tpch/tpch_db.h"
#include "tpch/tpch_queries.h"

namespace bdcc {
namespace bench {

/// Scale factor for TPC-H benches; override with BDCC_BENCH_SF.
inline double BenchScaleFactor(double fallback = 0.05) {
  const char* env = std::getenv("BDCC_BENCH_SF");
  if (env != nullptr) {
    double sf = std::atof(env);
    if (sf > 0) return sf;
  }
  return fallback;
}

/// \brief Strip a `--threads=N` flag from argv before google-benchmark sees
/// it (it rejects unknown flags) and return N. Falls back to the
/// BDCC_BENCH_THREADS env var, then to `fallback`. N caps the thread-count
/// sweep of the parallel benchmarks.
inline int StripThreadsFlag(int* argc, char** argv, int fallback = 4) {
  int threads = fallback;
  const char* env = std::getenv("BDCC_BENCH_THREADS");
  if (env != nullptr && std::atoi(env) > 0) threads = std::atoi(env);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int n = std::atoi(arg + 10);
      if (n > 0) threads = n;
      continue;  // swallow the flag
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

/// Thread counts to sweep: 1, 2, 4, ... doubling up to and always including
/// `max_threads` — one benchmark row per count lands in the JSON output, so
/// the speedup curve is directly plottable.
inline std::vector<int> ThreadCounts(int max_threads) {
  std::vector<int> out;
  for (int t = 1; t < max_threads; t *= 2) out.push_back(t);
  out.push_back(max_threads);
  return out;
}

struct QueryRun {
  double wall_ms = 0;
  double sim_io_ms = 0;
  uint64_t peak_memory = 0;
  uint64_t rows = 0;
  // Lifecycle counters (ExecStats): all zero on a healthy unlimited run;
  // nonzero values flag cancellations, budget refusals, or fault injection
  // interfering with the measurement.
  uint64_t morsels_cancelled = 0;
  uint64_t budget_denials = 0;
  uint64_t faults_injected = 0;
  // Delta-leg counters: nonzero only when the plan scanned a live table
  // with unmerged appends (see src/delta/).
  uint64_t delta_rows_scanned = 0;
  uint64_t delta_chunks = 0;
  uint64_t merges_completed = 0;
  std::vector<std::string> notes;
  bool ok = false;
  std::string error;
};

/// Cold-run one query on one scheme: clears the scheme's buffer pool, runs,
/// and collects wall time + simulated I/O + peak operator memory.
inline QueryRun RunQueryCold(tpch::TpchDb* db, opt::Scheme scheme, int q) {
  QueryRun out;
  io::BufferPool* pool = db->pool(scheme);
  io::DeviceModel* device = db->device(scheme);
  pool->Clear();
  device->ResetStats();

  exec::ExecContext exec_ctx(pool);
  tpch::QueryContext ctx;
  ctx.db = &db->db(scheme);
  ctx.exec = &exec_ctx;
  ctx.scale_factor = db->options().scale_factor;
  ctx.notes = &out.notes;

  auto start = std::chrono::steady_clock::now();
  auto result = tpch::RunTpchQuery(q, ctx);
  auto end = std::chrono::steady_clock::now();

  out.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  out.sim_io_ms = device->stats().simulated_seconds * 1000.0;
  out.peak_memory = exec_ctx.memory()->peak_bytes();
  out.morsels_cancelled = exec_ctx.stats()->morsels_cancelled;
  out.budget_denials = exec_ctx.stats()->budget_denials;
  out.faults_injected = exec_ctx.stats()->faults_injected;
  out.delta_rows_scanned = exec_ctx.stats()->delta_rows_scanned;
  out.delta_chunks = exec_ctx.stats()->delta_chunks;
  out.merges_completed = exec_ctx.stats()->merges_completed;
  if (result.ok()) {
    out.ok = true;
    out.rows = result.value().num_rows;
  } else {
    out.error = result.status().ToString();
  }
  return out;
}

/// \brief One machine-readable JSON result line per benchmark config.
///
/// The google-benchmark micros already emit JSON via --benchmark_out; the
/// plain fig/table drivers use this builder so every benchmark in the tree
/// produces greppable per-config records (the perf-trajectory files like
/// BENCH_pr3.json are built from these). Lines append to the file named by
/// $BDCC_BENCH_JSON, or go to stdout prefixed "BENCHJSON " when unset.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + Escape(bench) + "\"";
  }
  JsonLine& Str(const std::string& key, const std::string& value) {
    body_ += ",\"" + Escape(key) + "\":\"" + Escape(value) + "\"";
    return *this;
  }
  JsonLine& Num(const std::string& key, double value) {
    char buf[64];
    // NaN/inf have no JSON literal and would poison the whole line.
    if (!std::isfinite(value)) {
      body_ += ",\"" + Escape(key) + "\":null";
      return *this;
    }
    // Integral values (row counts, byte sizes) must round-trip exactly;
    // %.6g would silently truncate them to 6 significant digits.
    if (value >= -9.2e18 && value <= 9.2e18 &&
        value == static_cast<double>(static_cast<int64_t>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    body_ += ",\"" + Escape(key) + "\":" + buf;
    return *this;
  }
  void Emit() const {
    std::string line = body_ + "}\n";
    const char* path = std::getenv("BDCC_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') {
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
        return;
      }
    }
    std::printf("BENCHJSON %s", line.c_str());
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::string body_;
};

/// Append the lifecycle counters of `run` to a JSON line (only when nonzero,
/// so healthy baseline rows keep their historical shape and the regression
/// checker's config keys stay comparable).
inline void AddLifecycleCounters(JsonLine& line, const QueryRun& run) {
  if (run.morsels_cancelled > 0) {
    line.Num("morsels_cancelled", static_cast<double>(run.morsels_cancelled));
  }
  if (run.budget_denials > 0) {
    line.Num("budget_denials", static_cast<double>(run.budget_denials));
  }
  if (run.faults_injected > 0) {
    line.Num("faults_injected", static_cast<double>(run.faults_injected));
  }
  if (run.delta_rows_scanned > 0) {
    line.Num("delta_rows_scanned",
             static_cast<double>(run.delta_rows_scanned));
  }
  if (run.delta_chunks > 0) {
    line.Num("delta_chunks", static_cast<double>(run.delta_chunks));
  }
  if (run.merges_completed > 0) {
    line.Num("merges_completed", static_cast<double>(run.merges_completed));
  }
}

inline std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / double(1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / double(1ull << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace bench
}  // namespace bdcc

#endif  // BDCC_BENCH_BENCH_UTIL_H_
