// Concurrent serving throughput: N TPC-H query streams against one
// QueryRunner, swept over admission configurations.
//
// Each stream is a thread that serves a fixed number of queries through
// QueryRunner::Execute — even-numbered streams are interactive (point-ish
// queries Q6/Q12/Q14, high task priority), odd-numbered streams are batch
// (heavy Q1/Q9/Q18). Per config the driver reports QPS, p50/p99 latency
// (overall and interactive-only), and the shed/retry/exhausted counters,
// as one BENCHJSON row including host_cpus (throughput numbers from a
// 1-CPU CI host are not comparable to a workstation's).
//
// The final config is a deliberate overload — more streams than slots, a
// pool far below aggregate demand, tiny first budgets — and the driver
// *asserts* the serving contract there: every query terminates in a
// defined state (ok/shed/cancelled/exhausted), nothing reports leaked
// tracked bytes, sheds and retries actually happened, and the pool drains
// to zero. Violations exit nonzero, so running the binary is the test
// (the CI throughput-smoke job does exactly that under ASan).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/query_runner.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

struct BenchConfig {
  const char* name;
  int streams;
  serve::RunnerConfig runner;
  int queries_per_stream = 6;
  bool overload = false;  // assert sheds/retries happened
};

struct ConfigResult {
  serve::RunnerStats stats;
  std::vector<double> latency_ms;              // completed (ok) queries
  std::vector<double> interactive_latency_ms;  // ok, interactive class
  double wall_ms = 0;
  uint64_t queries = 0;
  uint64_t leaked_reports = 0;
  uint64_t undefined_outcomes = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

ConfigResult RunConfig(tpch::TpchDb* db, const BenchConfig& cfg) {
  serve::QueryRunner runner(cfg.runner);
  ConfigResult out;
  std::vector<std::vector<double>> lat(cfg.streams);
  std::vector<std::vector<double>> lat_interactive(cfg.streams);
  std::vector<uint64_t> leaked(cfg.streams, 0);
  std::vector<uint64_t> undefined(cfg.streams, 0);

  auto run_query = [db](exec::ExecContext* ctx, uint64_t budget,
                        int q) -> Result<exec::Batch> {
    tpch::QueryContext qc;
    qc.db = &db->db(opt::Scheme::kBdcc);
    qc.exec = ctx;
    qc.scale_factor = db->options().scale_factor;
    qc.planner.memory_limit_bytes = budget;
    qc.planner.num_threads = 2;
    return tpch::RunTpchQuery(q, qc);
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> streams;
  streams.reserve(cfg.streams);
  for (int s = 0; s < cfg.streams; ++s) {
    streams.emplace_back([&, s] {
      const bool interactive = s % 2 == 0;
      const int interactive_mix[] = {6, 12, 14};
      const int batch_mix[] = {1, 9, 18};
      serve::QueryClass cls = interactive ? serve::QueryClass::kInteractive
                                          : serve::QueryClass::kBatch;
      for (int i = 0; i < cfg.queries_per_stream; ++i) {
        int q = interactive ? interactive_mix[i % 3] : batch_mix[i % 3];
        auto t0 = std::chrono::steady_clock::now();
        serve::QueryReport report = runner.Execute(
            cls,
            [&](exec::ExecContext* ctx, uint64_t budget) {
              return run_query(ctx, budget, q);
            });
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        if (report.leaked_bytes != 0) ++leaked[s];
        switch (report.outcome) {
          case serve::Outcome::kOk:
            lat[s].push_back(ms);
            if (interactive) lat_interactive[s].push_back(ms);
            break;
          case serve::Outcome::kShed:
          case serve::Outcome::kCancelled:
          case serve::Outcome::kExhausted:
            break;
          default:
            std::fprintf(stderr, "stream %d Q%d undefined outcome: %s\n", s,
                         q, report.status.ToString().c_str());
            ++undefined[s];
        }
      }
    });
  }
  for (std::thread& t : streams) t.join();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  for (int s = 0; s < cfg.streams; ++s) {
    out.latency_ms.insert(out.latency_ms.end(), lat[s].begin(), lat[s].end());
    out.interactive_latency_ms.insert(out.interactive_latency_ms.end(),
                                      lat_interactive[s].begin(),
                                      lat_interactive[s].end());
    out.leaked_reports += leaked[s];
    out.undefined_outcomes += undefined[s];
  }
  out.queries =
      static_cast<uint64_t>(cfg.streams) * cfg.queries_per_stream;
  out.stats = runner.stats();
  if (runner.pool().reserved() != 0) {
    std::fprintf(stderr, "%s: pool holds %llu bytes after all streams\n",
                 cfg.name,
                 static_cast<unsigned long long>(runner.pool().reserved()));
    ++out.leaked_reports;
  }
  return out;
}

serve::RunnerConfig WideConfig() {
  serve::RunnerConfig r;
  r.admission.of(serve::QueryClass::kInteractive) = {4, 8, 0};
  r.admission.of(serve::QueryClass::kBatch) = {2, 8, 0};
  r.pool_bytes = 256ull << 20;
  return r;
}

serve::RunnerConfig NarrowConfig() {
  serve::RunnerConfig r;
  r.admission.of(serve::QueryClass::kInteractive) = {2, 4, 0};
  r.admission.of(serve::QueryClass::kBatch) = {1, 4, 0};
  r.pool_bytes = 64ull << 20;
  return r;
}

serve::RunnerConfig OverloadConfig() {
  serve::RunnerConfig r;
  // More streams than slots, single-entry queues, a queue-wait limit, and
  // first budgets far below what the batch queries need: forces queue-full
  // sheds, mid-query ResourceExhausted retries, and exhausted-after-K.
  r.admission.of(serve::QueryClass::kInteractive) = {1, 1, 200.0};
  r.admission.of(serve::QueryClass::kBatch) = {1, 1, 200.0};
  r.pool_bytes = 1ull << 20;
  r.default_budget_bytes = 32ull << 10;
  r.max_retries = 2;
  r.backoff_base_ms = 1.0;
  r.backoff_max_ms = 8.0;
  return r;
}

}  // namespace

int main() {
  double sf = BenchScaleFactor(0.01);
  int host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("== TPC-H concurrent serving throughput (SF %.3f, %d cpus) ==\n",
              sf, host_cpus);

  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.build_plain = false;
  options.build_pk = false;
  auto db_result = tpch::TpchDb::Create(options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "db build failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();

  std::vector<BenchConfig> configs;
  configs.push_back({"wide_4streams", 4, WideConfig()});
  configs.push_back({"wide_8streams", 8, WideConfig()});
  configs.push_back({"narrow_4streams", 4, NarrowConfig()});
  configs.push_back({"narrow_8streams", 8, NarrowConfig()});
  BenchConfig overload{"overload_12streams", 12, OverloadConfig()};
  overload.overload = true;
  configs.push_back(overload);

  bool violations = false;
  std::printf("%-20s | %8s %8s %8s %8s | %6s %6s %6s %6s\n", "config", "qps",
              "p50(ms)", "p99(ms)", "int_p99", "ok", "shed", "retry", "exh");
  for (const BenchConfig& cfg : configs) {
    ConfigResult res = RunConfig(db.get(), cfg);
    double qps = res.stats.ok / (res.wall_ms / 1000.0);
    double p50 = Percentile(res.latency_ms, 0.50);
    double p99 = Percentile(res.latency_ms, 0.99);
    double int_p99 = Percentile(res.interactive_latency_ms, 0.99);
    std::printf("%-20s | %8.2f %8.2f %8.2f %8.2f | %6llu %6llu %6llu %6llu\n",
                cfg.name, qps, p50, p99, int_p99,
                static_cast<unsigned long long>(res.stats.ok),
                static_cast<unsigned long long>(res.stats.shed),
                static_cast<unsigned long long>(res.stats.retries),
                static_cast<unsigned long long>(res.stats.exhausted));

    JsonLine line("tpch_throughput");
    line.Str("config", cfg.name)
        .Num("sf", sf)
        .Num("streams", cfg.streams)
        .Num("interactive_slots",
             cfg.runner.admission.of(serve::QueryClass::kInteractive).slots)
        .Num("batch_slots",
             cfg.runner.admission.of(serve::QueryClass::kBatch).slots)
        .Num("pool_mb",
             static_cast<double>(cfg.runner.pool_bytes) / (1 << 20))
        .Num("host_cpus", host_cpus)
        .Num("queries", static_cast<double>(res.queries))
        .Num("qps", qps)
        .Num("p50_ms", p50)
        .Num("p99_ms", p99)
        .Num("interactive_p99_ms", int_p99)
        .Num("ok", static_cast<double>(res.stats.ok))
        .Num("shed", static_cast<double>(res.stats.shed))
        .Num("cancelled", static_cast<double>(res.stats.cancelled))
        .Num("exhausted", static_cast<double>(res.stats.exhausted))
        .Num("errors", static_cast<double>(res.stats.errors))
        .Num("retries", static_cast<double>(res.stats.retries));
    line.Emit();

    // The serving contract, asserted on every config.
    uint64_t accounted = res.stats.ok + res.stats.shed +
                         res.stats.cancelled + res.stats.exhausted +
                         res.stats.errors;
    if (accounted != res.queries) {
      std::fprintf(stderr, "%s: %llu queries but %llu terminal outcomes\n",
                   cfg.name, static_cast<unsigned long long>(res.queries),
                   static_cast<unsigned long long>(accounted));
      violations = true;
    }
    if (res.undefined_outcomes != 0 || res.stats.errors != 0) {
      std::fprintf(stderr, "%s: %llu undefined outcomes, %llu errors\n",
                   cfg.name,
                   static_cast<unsigned long long>(res.undefined_outcomes),
                   static_cast<unsigned long long>(res.stats.errors));
      violations = true;
    }
    if (res.leaked_reports != 0) {
      std::fprintf(stderr, "%s: %llu queries left tracked bytes behind\n",
                   cfg.name,
                   static_cast<unsigned long long>(res.leaked_reports));
      violations = true;
    }
    if (cfg.overload) {
      if (res.stats.shed == 0) {
        std::fprintf(stderr, "%s: overload produced no sheds\n", cfg.name);
        violations = true;
      }
      if (res.stats.retries == 0) {
        std::fprintf(stderr, "%s: overload produced no retries\n", cfg.name);
        violations = true;
      }
    }
  }

  if (violations) {
    std::fprintf(stderr, "serving-contract violations detected\n");
    return 1;
  }
  std::printf("serving contract held across %zu configs\n", configs.size());
  return 0;
}
