// google-benchmark microbenchmarks for the paper's benefit (i): selection
// pushdown. Compares a full plain scan against a BDCC scan with group
// pruning on a clustered dimension, at several selectivities, plus
// morsel-parallel variants swept over --threads=N (one JSON row per thread
// count: the scan speedup curve).
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bdcc/scatter_scan.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/task_scheduler.h"
#include "exec/filter.h"
#include "exec/morsel.h"
#include "exec/scan.h"

namespace {

using namespace bdcc;  // NOLINT

class NoFkResolver : public TableResolver {
 public:
  explicit NoFkResolver(const Table* t) : t_(t) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    if (name == t_->name()) return t_;
    return Status::NotFound(name);
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return Status::NotFound(id);
  }

 private:
  const Table* t_;
};

constexpr uint64_t kRows = 500000;
constexpr int64_t kDomain = 1 << 16;

struct Fixture {
  Table plain{"T"};
  std::unique_ptr<BdccTable> clustered;

  Fixture() {
    Rng rng(5);
    Column k(TypeId::kInt32), v(TypeId::kFloat64);
    for (uint64_t i = 0; i < kRows; ++i) {
      k.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kDomain - 1)));
      v.AppendFloat64(rng.NextDouble());
    }
    plain.AddColumn("k", std::move(k)).AbortIfNotOK();
    plain.AddColumn("v", std::move(v)).AbortIfNotOK();
    plain.BuildZoneMaps(1024);

    Table copy = plain.Clone();
    auto dim =
        binning::CreateRangeDimension("D_K", "T", "k", 0, kDomain - 1, 10)
            .ValueOrDie();
    std::vector<DimensionUse> uses(1);
    uses[0].dimension = std::make_shared<const Dimension>(std::move(dim));
    // Resolve against `plain`: `copy` is moved into BuildBdccTable below and
    // must not be referenced during the build.
    NoFkResolver resolver(&plain);
    clustered = std::make_unique<BdccTable>(
        BuildBdccTable(std::move(copy), uses, resolver, {}).ValueOrDie());
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

// Selectivity = 2^-range(0).
void BM_PlainScanFiltered(benchmark::State& state) {
  Fixture& f = F();
  int64_t hi = kDomain >> state.range(0);
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    exec::PlainScan scan(
        &f.plain, {"k", "v"},
        {{"k", ValueRange{Value::Int32(0),
                          Value::Int32(static_cast<int32_t>(hi - 1))}}});
    scan.Open(&ctx).AbortIfNotOK();
    uint64_t matched = 0;
    while (true) {
      auto b = scan.Next(&ctx).ValueOrDie();
      if (b.empty()) break;
      for (size_t i = 0; i < b.num_rows; ++i) {
        if (b.columns[0].i32[i] < hi) ++matched;
      }
    }
    benchmark::DoNotOptimize(matched);
  }
}

void BM_BdccScanPruned(benchmark::State& state) {
  Fixture& f = F();
  int64_t hi = kDomain >> state.range(0);
  const BdccTable& bt = *f.clustered;
  for (auto _ : state) {
    exec::ExecContext ctx(nullptr);
    // Prune groups via the dimension's bin range (pushdown).
    uint64_t lo_bin, hi_bin;
    CompositeValue lo{Value::Int64(0)}, hiv{Value::Int64(hi - 1)};
    bt.uses()[0].dimension->BinRange(&lo, &hiv, &lo_bin, &hi_bin);
    uint64_t lo_prefix, hi_prefix;
    bt.BinRangeToGroupPrefix(0, lo_bin, hi_bin, &lo_prefix, &hi_prefix);
    auto ranges = FilterGroupsByPrefix(bt, PlanNaturalScan(bt), 0, lo_prefix,
                                       hi_prefix);
    exec::BdccScan scan(&bt, {"k", "v"}, std::move(ranges),
                        {{"k", ValueRange{Value::Int32(0),
                                          Value::Int32(static_cast<int32_t>(
                                              hi - 1))}}});
    scan.Open(&ctx).AbortIfNotOK();
    uint64_t matched = 0;
    while (true) {
      auto b = scan.Next(&ctx).ValueOrDie();
      if (b.empty()) break;
      for (size_t i = 0; i < b.num_rows; ++i) {
        if (b.columns[0].i32[i] < hi) ++matched;
      }
    }
    benchmark::DoNotOptimize(matched);
  }
}

BENCHMARK(BM_PlainScanFiltered)->Arg(2)->Arg(5)->Arg(8);
BENCHMARK(BM_BdccScanPruned)->Arg(2)->Arg(5)->Arg(8);

// Morsel-parallel plain scan: `threads` clones walk strided zone-aligned
// morsels of the shared plan (selectivity fixed at 2^-2).
void RunPlainScanParallel(benchmark::State& state, int threads) {
  Fixture& f = F();
  int64_t hi = kDomain >> 2;
  auto morsels = std::make_shared<const std::vector<exec::Morsel>>(
      exec::MakeRowMorsels(kRows, 1024, 16384));
  for (auto _ : state) {
    std::vector<uint64_t> matched(threads, 0);
    common::TaskScheduler::Shared()->ParallelFor(threads, [&](size_t i) {
      exec::ExecContext ctx(nullptr);
      exec::PlainScan scan(
          &f.plain, {"k", "v"},
          {{"k", ValueRange{Value::Int32(0),
                            Value::Int32(static_cast<int32_t>(hi - 1))}}});
      scan.RestrictToMorsels(
          exec::MorselSet{morsels, i, static_cast<size_t>(threads)});
      scan.Open(&ctx).AbortIfNotOK();
      while (true) {
        auto b = scan.Next(&ctx).ValueOrDie();
        if (b.empty()) break;
        for (size_t r = 0; r < b.num_rows; ++r) {
          if (b.columns[0].i32[r] < hi) ++matched[i];
        }
      }
    });
    uint64_t total = 0;
    for (uint64_t m : matched) total += m;
    benchmark::DoNotOptimize(total);
  }
  state.counters["threads"] = threads;
}

// Morsel-parallel BDCC scan: group pruning first, then GroupRange-index
// morsels split the surviving groups across clones.
void RunBdccScanParallel(benchmark::State& state, int threads) {
  Fixture& f = F();
  int64_t hi = kDomain >> 2;
  const BdccTable& bt = *f.clustered;
  uint64_t lo_bin, hi_bin;
  CompositeValue lo{Value::Int64(0)}, hiv{Value::Int64(hi - 1)};
  bt.uses()[0].dimension->BinRange(&lo, &hiv, &lo_bin, &hi_bin);
  uint64_t lo_prefix, hi_prefix;
  bt.BinRangeToGroupPrefix(0, lo_bin, hi_bin, &lo_prefix, &hi_prefix);
  auto ranges = std::make_shared<const std::vector<GroupRange>>(
      FilterGroupsByPrefix(bt, PlanNaturalScan(bt), 0, lo_prefix, hi_prefix));
  auto morsels = std::make_shared<const std::vector<exec::Morsel>>(
      exec::MakeRangeMorsels(*ranges, 16384));
  for (auto _ : state) {
    std::vector<uint64_t> matched(threads, 0);
    common::TaskScheduler::Shared()->ParallelFor(threads, [&](size_t i) {
      exec::ExecContext ctx(nullptr);
      exec::BdccScan scan(
          &bt, {"k", "v"}, *ranges,
          {{"k", ValueRange{Value::Int32(0),
                            Value::Int32(static_cast<int32_t>(hi - 1))}}});
      scan.RestrictToMorsels(
          exec::MorselSet{morsels, i, static_cast<size_t>(threads)});
      scan.Open(&ctx).AbortIfNotOK();
      while (true) {
        auto b = scan.Next(&ctx).ValueOrDie();
        if (b.empty()) break;
        for (size_t r = 0; r < b.num_rows; ++r) {
          if (b.columns[0].i32[r] < hi) ++matched[i];
        }
      }
    });
    uint64_t total = 0;
    for (uint64_t m : matched) total += m;
    benchmark::DoNotOptimize(total);
  }
  state.counters["threads"] = threads;
}

// ---- Zero-copy view emission sweep ----
//
// A clustered table (long runs on k) where zone maps prove whole chunks
// all-pass: compares copying scans against zero-copy view emission, both
// unfiltered and under an all-match predicate (the zone short-circuit that
// skips every codec decode). One JsonLine per config.
void RunZeroCopySweep() {
  Rng rng(23);
  Table t("ZC");
  Column k(TypeId::kInt32), v(TypeId::kFloat64), w(TypeId::kInt64);
  int32_t cur = 0;
  uint64_t left = 0;
  for (uint64_t i = 0; i < kRows; ++i) {
    if (left == 0) {
      cur = static_cast<int32_t>(rng.Uniform(0, 999));
      left = static_cast<uint64_t>(rng.Uniform(100, 400));
    }
    --left;
    k.AppendInt32(cur);
    v.AppendFloat64(rng.NextDouble());
    w.AppendInt64(static_cast<int64_t>(i));
  }
  t.AddColumn("k", std::move(k)).AbortIfNotOK();
  t.AddColumn("v", std::move(v)).AbortIfNotOK();
  t.AddColumn("w", std::move(w)).AbortIfNotOK();
  t.BuildZoneMaps(1024);
  t.BuildEncodedLanes();

  struct Config {
    const char* name;
    bool filtered;
    bool zero_copy;
  };
  const Config configs[] = {{"copy", false, false},
                            {"views", false, true},
                            {"allmatch_copy", true, false},
                            {"allmatch_views", true, true}};
  for (const Config& c : configs) {
    double best_ms = 0;
    exec::ExecStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      exec::ExecContext ctx(nullptr);
      std::vector<exec::ScanPredicate> preds;
      if (c.filtered) {
        // Every row satisfies this, so zone maps prove all-match per chunk.
        preds = {{"k", ValueRange{Value::Int32(0), Value::Int32(999)}}};
      }
      exec::PlainScan scan(&t, {"k", "v", "w"}, preds);
      scan.EnableRowFilter(c.filtered);
      scan.SetEncodedEval(exec::EncodedEval::kAuto);
      scan.EnableZeroCopy(c.zero_copy);
      auto t0 = std::chrono::steady_clock::now();
      scan.Open(&ctx).AbortIfNotOK();
      uint64_t sum = 0;
      while (true) {
        auto b = scan.Next(&ctx).ValueOrDie();
        if (b.empty()) break;
        const int32_t* kd = b.columns[0].i32_data();
        for (size_t i = 0; i < b.num_rows; ++i) sum += kd[b.RowAt(i)];
        scan.Recycle(std::move(b));
      }
      scan.Close(&ctx);
      auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(sum);
      double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = *ctx.stats();
    }
    bdcc::bench::JsonLine("micro_scan_zero_copy")
        .Str("mode", c.name)
        .Str("simd", bdcc::simd::TierName(bdcc::simd::ActiveTier()))
        .Num("host_cpus", std::thread::hardware_concurrency())
        .Num("rows", static_cast<double>(kRows))
        .Num("wall_ms", best_ms)
        .Num("mrows_per_s", kRows / 1e6 / (best_ms / 1e3))
        .Num("chunks_zero_copy", static_cast<double>(stats.chunks_zero_copy))
        .Num("decodes_skipped", static_cast<double>(stats.decodes_skipped))
        .Emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  int max_threads = bdcc::bench::StripThreadsFlag(&argc, argv, 4);
  RunZeroCopySweep();
  for (int t : bdcc::bench::ThreadCounts(max_threads)) {
    benchmark::RegisterBenchmark(
        ("BM_PlainScanParallel/threads:" + std::to_string(t)).c_str(),
        [t](benchmark::State& s) { RunPlainScanParallel(s, t); });
    benchmark::RegisterBenchmark(
        ("BM_BdccScanParallel/threads:" + std::to_string(t)).c_str(),
        [t](benchmark::State& s) { RunBdccScanParallel(s, t); });
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
