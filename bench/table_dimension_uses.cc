// Reproduces the paper's Section IV dimension-use table (per-table masks).
//
// Two renderings:
//  (1) at the *paper's* dimension granularities (D_NATION=5, D_PART=13,
//      D_DATE=13 bits; LINEITEM reduced to 20 bits) — the masks must match
//      the published bit strings exactly;
//  (2) at the current scale factor's advisor output.
#include <cstdio>

#include "advisor/report.h"
#include "bdcc/interleave.h"
#include "bench/bench_util.h"
#include "common/bits.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

void PrintPaperMasks() {
  struct Row {
    const char* table;
    std::vector<int> use_bits;
    std::vector<const char*> labels;
    int reduce_to;  // -1: keep full
    std::vector<const char*> expected;
  };
  // The paper's TPC-H setup: bits(D_DATE)=13, bits(D_NATION)=5,
  // bits(D_PART)=13; LINEITEM count-table granularity 20.
  std::vector<Row> rows = {
      {"NATION", {5}, {"D_NATION -"}, -1, {"11111"}},
      {"SUPPLIER", {5}, {"D_NATION FK_S_N"}, -1, {"11111"}},
      {"CUSTOMER", {5}, {"D_NATION FK_C_N"}, -1, {"11111"}},
      {"PART", {13}, {"D_PART -"}, -1, {"1111111111111"}},
      {"PARTSUPP",
       {13, 5},
       {"D_PART FK_PS_P", "D_NATION FK_PS_S.FK_S_N"},
       -1,
       {"101010101011111111", "10101010100000000"}},
      {"ORDERS",
       {13, 5},
       {"D_DATE -", "D_NATION FK_O_C.FK_C_N"},
       -1,
       {"101010101011111111", "10101010100000000"}},
      {"LINEITEM",
       {13, 5, 5, 13},
       {"D_DATE FK_L_O", "D_NATION FK_L_O.FK_O_C.FK_C_N",
        "D_NATION FK_L_S.FK_S_N", "D_PART FK_L_P"},
       20,
       {"10001000100010001000", "1000100010001000100",
        "100010001000100010", "10001000100010001"}},
  };
  int mismatches = 0;
  for (const Row& row : rows) {
    auto spec =
        interleave::BuildMasks(row.use_bits,
                               interleave::Policy::kRoundRobinPerUse)
            .ValueOrDie();
    if (row.reduce_to > 0) spec = interleave::Reduce(spec, row.reduce_to);
    for (size_t u = 0; u < spec.masks.size(); ++u) {
      std::string got =
          advisor::PaperMask(spec.masks[u], spec.total_bits);
      bool match = got == row.expected[u];
      if (!match) ++mismatches;
      std::printf("%-10s %-32s %-22s %s\n", u == 0 ? row.table : "",
                  row.labels[u], got.c_str(), match ? "== paper" : "!= paper");
    }
  }
  std::printf("\n%s\n", mismatches == 0
                            ? "all masks match the published table"
                            : "MISMATCH against the published table!");
  JsonLine("table_dimension_uses").Num("mask_mismatches", mismatches).Emit();
}

}  // namespace

int main() {
  std::printf(
      "== Section IV dimension-use table at paper granularities ==\n\n");
  PrintPaperMasks();

  double sf = BenchScaleFactor(0.05);
  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.build_plain = false;
  options.build_pk = false;
  auto db = tpch::TpchDb::Create(options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Advisor output at SF %.3f (masks at full granularity, "
              "self-tuned TCOUNT) ==\n\n%s\n",
              sf,
              advisor::RenderBuiltTables(db.value()->bdcc_tables()).c_str());
  return 0;
}
