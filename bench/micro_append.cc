// Online-append lifecycle bench: append throughput into a live lineitem,
// scan throughput across the three states of the delta lifecycle
// (clustered baseline, live with an unmerged delta, re-clustered after the
// merge), and the merge pass itself.
//
// The headline number is the restore ratio: after a 50%-delta burst, one
// full merge pass must bring TPC-H Q1/Q6 scan throughput back to >= ~80%
// of the fully-clustered baseline — i.e. the background re-clusterer
// really does recover the layout the advisor designed, it does not just
// hide the delta behind a slower unclustered leg forever.
//
// Plain driver (no google-benchmark): one BENCHJSON row per configuration,
// keyed by mode/state/query/delta fraction. Scan rows carry the delta-leg
// ExecStats counters whenever they are nonzero.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "delta/live_table.h"
#include "delta/snapshot_db.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

// Dimension-bin resolver over the plain scheme's source rows (the same
// wiring a serving process would use to compute appended rows' keys).
class PlainResolver : public TableResolver {
 public:
  explicit PlainResolver(const tpch::TpchDb* db) : db_(db) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    const Table* t = db_->plain().storage(name);
    if (t == nullptr) return Status::NotFound(name);
    return t;
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return db_->schema_catalog().GetForeignKey(id);
  }

 private:
  const tpch::TpchDb* db_;
};

Table SliceLineitem(const Table& full, uint64_t begin, uint64_t end) {
  Table slice(full.name());
  for (int c = 0; c < static_cast<int>(full.num_columns()); ++c) {
    slice.AddColumn(full.column_name(c), Column(full.column(c).type()))
        .AbortIfNotOK();
  }
  slice.AppendRowsFrom(full, begin, end);
  return slice;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Best-of-N wall time for one query against `db`; ExecStats of the best
// run land in `run` (counters are per-run, not accumulated).
QueryRun RunQueryBest(const opt::PhysicalDb* db, int q, double sf,
                      int threads, int iters) {
  QueryRun best;
  for (int i = 0; i < iters; ++i) {
    QueryRun run;
    exec::ExecContext exec_ctx(nullptr);
    tpch::QueryContext ctx;
    ctx.db = db;
    ctx.exec = &exec_ctx;
    ctx.scale_factor = sf;
    ctx.planner.num_threads = threads;
    auto start = std::chrono::steady_clock::now();
    auto result = tpch::RunTpchQuery(q, ctx);
    run.wall_ms = MillisSince(start);
    run.delta_rows_scanned = exec_ctx.stats()->delta_rows_scanned;
    run.delta_chunks = exec_ctx.stats()->delta_chunks;
    run.merges_completed = exec_ctx.stats()->merges_completed;
    if (!result.ok()) {
      std::fprintf(stderr, "micro_append: Q%d failed: %s\n", q,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    run.ok = true;
    run.rows = result.value().num_rows;
    if (!best.ok || run.wall_ms < best.wall_ms) best = run;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = StripThreadsFlag(&argc, argv, 4);
  double sf = BenchScaleFactor(0.02);
  const int kScanIters = 3;

  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.seed = 7;
  options.build_pk = false;  // plain (resolver source) + bdcc only
  auto db = tpch::TpchDb::Create(options).ValueOrDie();
  PlainResolver resolver(db.get());
  const Table* full = db->plain().storage("LINEITEM");
  const uint64_t total = full->num_rows();
  int host_cpus = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("== micro_append: online-append lifecycle (SF %.3f, %llu "
              "lineitem rows, %d threads) ==\n\n",
              sf, static_cast<unsigned long long>(total), threads);

  // Clustered baseline: the advisor-designed full lineitem, no delta.
  double clustered_ms[7] = {0};
  for (int q : {1, 6}) {
    QueryRun run = RunQueryBest(&db->bdcc(), q, sf, threads, kScanIters);
    clustered_ms[q] = run.wall_ms;
    JsonLine("micro_append")
        .Num("sf", sf)
        .Str("mode", "scan")
        .Str("state", "clustered")
        .Num("q", q)
        .Num("delta_pct", 0)
        .Num("threads", threads)
        .Num("rows", static_cast<double>(total))
        .Num("wall_ms", run.wall_ms)
        .Num("scan_mrows_per_s", total / run.wall_ms / 1e3)
        .Num("host_cpus", host_cpus)
        .Emit();
    std::printf("Q%d clustered          %8.2f ms  (%.1f Mrows/s)\n", q,
                run.wall_ms, total / run.wall_ms / 1e3);
  }

  for (int delta_pct : {10, 50}) {
    const uint64_t base_rows = total - total * delta_pct / 100;
    std::printf("\n-- burst: %d%% of rows arrive as appends --\n", delta_pct);

    // Rebuild the clustered base from the first (100 - delta_pct)% of the
    // source rows, then append the remainder in fixed-size batches,
    // timing the appends (key computation + chunk seal + publication).
    BdccBuildOptions build = db->options().advisor.build;
    build.zone_rows = db->options().zone_rows;
    auto base = BuildBdccTable(SliceLineitem(*full, 0, base_rows),
                               db->bdcc_tables().at("LINEITEM").uses(),
                               resolver, build)
                    .ValueOrDie();
    auto live =
        delta::LiveTable::Create(std::move(base), &resolver).ValueOrDie();

    const uint64_t kBatchRows = 4096;
    std::vector<Table> batches;
    for (uint64_t at = base_rows; at < total; at += kBatchRows) {
      batches.push_back(
          SliceLineitem(*full, at, std::min(total, at + kBatchRows)));
    }
    auto append_start = std::chrono::steady_clock::now();
    for (const Table& b : batches) live->Append(b).ValueOrDie();
    double append_ms = MillisSince(append_start);
    uint64_t appended = total - base_rows;
    JsonLine("micro_append")
        .Num("sf", sf)
        .Str("mode", "append")
        .Num("delta_pct", delta_pct)
        .Num("batch_rows", static_cast<double>(kBatchRows))
        .Num("rows", static_cast<double>(appended))
        .Num("wall_ms", append_ms)
        .Num("append_krows_per_s", appended / append_ms)
        .Num("host_cpus", host_cpus)
        .Emit();
    std::printf("append %7llu rows    %8.2f ms  (%.0f Krows/s, %zu "
                "batches)\n",
                static_cast<unsigned long long>(appended), append_ms,
                appended / append_ms, batches.size());

    // Live state: scans take the unclustered delta leg.
    delta::SnapshotDb overlay(&db->bdcc());
    overlay.AddLiveTable(live.get());
    for (int q : {1, 6}) {
      QueryRun run = RunQueryBest(&overlay, q, sf, threads, kScanIters);
      JsonLine line("micro_append");
      line.Num("sf", sf)
          .Str("mode", "scan")
          .Str("state", "live")
          .Num("q", q)
          .Num("delta_pct", delta_pct)
          .Num("threads", threads)
          .Num("rows", static_cast<double>(total))
          .Num("wall_ms", run.wall_ms)
          .Num("scan_mrows_per_s", total / run.wall_ms / 1e3)
          .Num("host_cpus", host_cpus);
      AddLifecycleCounters(line, run);
      line.Emit();
      std::printf("Q%d live               %8.2f ms  (%.1f Mrows/s, delta "
                  "leg %llu rows / %llu chunks)\n",
                  q, run.wall_ms, total / run.wall_ms / 1e3,
                  static_cast<unsigned long long>(run.delta_rows_scanned),
                  static_cast<unsigned long long>(run.delta_chunks));
    }

    // One full merge pass re-clusters every dirty group.
    auto merge_start = std::chrono::steady_clock::now();
    auto merged = live->Merge().ValueOrDie();
    double merge_ms = MillisSince(merge_start);
    JsonLine("micro_append")
        .Num("sf", sf)
        .Str("mode", "merge")
        .Num("delta_pct", delta_pct)
        .Num("rows", static_cast<double>(merged.rows_merged))
        .Num("groups", static_cast<double>(merged.groups_merged))
        .Num("wall_ms", merge_ms)
        .Num("merge_krows_per_s", merged.rows_merged / merge_ms)
        .Num("host_cpus", host_cpus)
        .Emit();
    std::printf("merge  %7llu rows    %8.2f ms  (%.0f Krows/s, %llu "
                "groups)\n",
                static_cast<unsigned long long>(merged.rows_merged),
                merge_ms, merged.rows_merged / merge_ms,
                static_cast<unsigned long long>(merged.groups_merged));

    // Post-merge: the overlay re-pins the re-clustered epoch; throughput
    // must be back within a whisker of the clustered baseline.
    overlay.Refresh();
    for (int q : {1, 6}) {
      QueryRun run = RunQueryBest(&overlay, q, sf, threads, kScanIters);
      double restore = clustered_ms[q] / run.wall_ms;
      JsonLine("micro_append")
          .Num("sf", sf)
          .Str("mode", "scan")
          .Str("state", "merged")
          .Num("q", q)
          .Num("delta_pct", delta_pct)
          .Num("threads", threads)
          .Num("rows", static_cast<double>(total))
          .Num("wall_ms", run.wall_ms)
          .Num("scan_mrows_per_s", total / run.wall_ms / 1e3)
          .Num("restore_ratio", restore)
          .Num("host_cpus", host_cpus)
          .Emit();
      std::printf("Q%d merged             %8.2f ms  (%.1f Mrows/s, %.0f%% "
                  "of clustered)\n",
                  q, run.wall_ms, total / run.wall_ms / 1e3, restore * 100);
      if (restore < 0.8) {
        std::printf("  WARNING: merge restored only %.0f%% of clustered "
                    "throughput (want >= 80%%)\n",
                    restore * 100);
      }
    }
  }
  return 0;
}
