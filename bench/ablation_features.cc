// Ablation of the BDCC design choices (DESIGN.md E9/E10): run the full
// TPC-H suite on the BDCC scheme with planner features enabled
// incrementally, attributing the total win to zone maps (MinMax), dimension
// pushdown/propagation, and sandwich operators. Results stay identical
// across rows (asserted by tests/opt/planner_test.cc); only cost moves.
#include <cstdio>

#include "bench/bench_util.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

struct Row {
  const char* label;
  bool zones, pruning, sandwich;
};

}  // namespace

int main() {
  double sf = BenchScaleFactor(0.02);
  std::printf("== Feature ablation on the BDCC scheme (SF %.3f) ==\n\n", sf);
  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.build_plain = false;
  options.build_pk = false;
  auto db = tpch::TpchDb::Create(options).ValueOrDie();

  Row rows[] = {
      {"none (plain-like)", false, false, false},
      {"+ zone maps", true, false, false},
      {"+ pushdown/propagation", true, true, false},
      {"+ sandwich operators", true, true, true},
  };
  std::printf("%-26s %10s %12s %12s %10s\n", "features", "wall(ms)",
              "sim-I/O(ms)", "peak-mem", "rows-scanned");
  for (const Row& row : rows) {
    double wall = 0, io = 0;
    uint64_t peak = 0, scanned = 0;
    for (int q = 1; q <= tpch::kNumTpchQueries; ++q) {
      io::BufferPool* pool = db->pool(opt::Scheme::kBdcc);
      io::DeviceModel* device = db->device(opt::Scheme::kBdcc);
      pool->Clear();
      device->ResetStats();
      exec::ExecContext exec_ctx(pool);
      tpch::QueryContext ctx;
      ctx.db = &db->bdcc();
      ctx.exec = &exec_ctx;
      ctx.scale_factor = sf;
      ctx.planner.enable_zonemaps = row.zones;
      ctx.planner.enable_group_pruning = row.pruning;
      ctx.planner.enable_sandwich = row.sandwich;
      auto start = std::chrono::steady_clock::now();
      auto result = tpch::RunTpchQuery(q, ctx);
      auto end = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "Q%d failed: %s\n", q,
                     result.status().ToString().c_str());
        return 1;
      }
      wall += std::chrono::duration<double, std::milli>(end - start).count();
      io += device->stats().simulated_seconds * 1e3;
      peak = std::max(peak, exec_ctx.memory()->peak_bytes());
      scanned += exec_ctx.stats()->rows_scanned;
    }
    std::printf("%-26s %10.1f %12.2f %12s %10llu\n", row.label, wall, io,
                HumanBytes(peak).c_str(),
                static_cast<unsigned long long>(scanned));
    JsonLine("ablation_features")
        .Str("features", row.label)
        .Num("sf", sf)
        .Num("wall_ms", wall)
        .Num("sim_io_ms", io)
        .Num("peak_bytes", static_cast<double>(peak))
        .Num("rows_scanned", static_cast<double>(scanned))
        .Emit();
  }
  std::printf(
      "\nexpected attribution: pushdown/propagation cuts rows scanned and\n"
      "simulated I/O; sandwich operators cut peak memory; zone maps add\n"
      "selectivity only where clustering makes them so (paper Section IV).\n");
  return 0;
}
