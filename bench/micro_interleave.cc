// google-benchmark microbenchmarks for the BDCC key machinery: bit
// spread/extract, key composition, bin lookup, count-table construction.
#include <benchmark/benchmark.h>

#include "bdcc/binning.h"
#include "bdcc/count_table.h"
#include "bdcc/interleave.h"
#include "bench/bench_util.h"
#include "common/bits.h"
#include "common/rng.h"

namespace {

using namespace bdcc;  // NOLINT

void BM_SpreadBits(benchmark::State& state) {
  Rng rng(1);
  uint64_t mask = 0x5555555555ull;  // 20 alternating bits
  uint64_t v = rng.Next64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits::SpreadBits(v & 0xFFFFF, mask));
    v += 0x9E3779B9;
  }
}
BENCHMARK(BM_SpreadBits);

void BM_ExtractBits(benchmark::State& state) {
  Rng rng(2);
  uint64_t mask = 0x5555555555ull;
  uint64_t v = rng.Next64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits::ExtractBits(v, mask));
    v += 0x9E3779B9;
  }
}
BENCHMARK(BM_ExtractBits);

void BM_ComposeKey(benchmark::State& state) {
  std::vector<int> use_bits = {13, 5, 5, 13};
  auto spec =
      interleave::BuildMasks(use_bits, interleave::Policy::kRoundRobinPerUse)
          .ValueOrDie();
  uint64_t bins[4] = {1234, 17, 22, 4000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        interleave::ComposeKey(bins, use_bits.data(), spec));
    bins[0] = (bins[0] + 1) & 0x1FFF;
  }
}
BENCHMARK(BM_ComposeKey);

void BM_BinLookup(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  auto dim = binning::CreateRangeDimension("D", "T", "k", 0, 1 << 20, bits)
                 .ValueOrDie();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dim.BinOfInt(static_cast<int64_t>(rng.Next64() % (1 << 20))));
  }
}
BENCHMARK(BM_BinLookup)->Arg(5)->Arg(10)->Arg(13);

void BM_CountTableBuild(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(4);
  std::vector<uint64_t> keys(n);
  for (int64_t i = 0; i < n; ++i) keys[i] = rng.Next64() & 0xFFFFF;
  std::sort(keys.begin(), keys.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTable::Build(keys, 20, 12));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CountTableBuild)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  // Accept (and ignore) the harness-wide --threads flag so the CI bench
  // smoke can invoke every micro benchmark uniformly.
  bdcc::bench::StripThreadsFlag(&argc, argv, 1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
