// Reproduces the Section III "correlated dimensions / puff pastry" study:
// when clustered dimensions are correlated or hierarchical, many of the
// 2^(d*b) possible groups are missing; the per-granularity group-size
// histograms let Algorithm 1 pick a *higher* count-table granularity to
// keep average group sizes at AR. "Puff pastry does not hurt."
//
// Synthetic setup: a fact table clustered on two dimensions that are
// (a) independent, (b) perfectly correlated (hierarchical), (c) partially
// correlated. Reports observed groups vs 2^b, the missing-group factor,
// and the granularity Algorithm 1 picks in each case.
#include <cstdio>

#include "bdcc/bdcc_table.h"
#include "bdcc/binning.h"
#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/rng.h"

using namespace bdcc;  // NOLINT

namespace {

class NoFkResolver : public TableResolver {
 public:
  explicit NoFkResolver(const Table* t) : t_(t) {}
  Result<const Table*> GetTable(const std::string& name) const override {
    if (name == t_->name()) return t_;
    return Status::NotFound(name);
  }
  Result<const catalog::ForeignKey*> GetForeignKey(
      const std::string& id) const override {
    return Status::NotFound(id);
  }

 private:
  const Table* t_;
};

void RunCase(const char* label, double correlation, uint64_t rows) {
  Rng rng(99);
  Table t("FACT");
  Column a(TypeId::kInt32), b(TypeId::kInt32), payload(TypeId::kInt64);
  for (uint64_t i = 0; i < rows; ++i) {
    int32_t va = static_cast<int32_t>(rng.Uniform(0, 255));
    // With probability `correlation`, B is a function of A (hierarchy);
    // otherwise independent.
    int32_t vb = rng.Chance(correlation)
                     ? (va * 7) % 256
                     : static_cast<int32_t>(rng.Uniform(0, 255));
    a.AppendInt32(va);
    b.AppendInt32(vb);
    payload.AppendInt64(static_cast<int64_t>(i));
  }
  t.AddColumn("a", std::move(a)).AbortIfNotOK();
  t.AddColumn("b", std::move(b)).AbortIfNotOK();
  t.AddColumn("payload", std::move(payload)).AbortIfNotOK();

  auto da = binning::CreateRangeDimension("D_A", "FACT", "a", 0, 255, 8)
                .ValueOrDie();
  auto db = binning::CreateRangeDimension("D_B", "FACT", "b", 0, 255, 8)
                .ValueOrDie();
  std::vector<DimensionUse> uses(2);
  uses[0].dimension = std::make_shared<const Dimension>(std::move(da));
  uses[1].dimension = std::make_shared<const Dimension>(std::move(db));

  NoFkResolver resolver(&t);  // must outlive the build (path resolution)
  BdccBuildOptions options;
  options.tuning.efficient_access_bytes = 4 * 1024;
  auto built =
      BuildBdccTable(t.Clone(), uses, resolver, options).ValueOrDie();

  int b_chosen = built.count_bits();
  const GroupSizeAnalysis& an = built.analysis();
  std::printf("%-22s | groups@%2d: %6llu of %8llu (missing factor %6.1f) | "
              "chosen b=%d, groups=%zu\n",
              label, built.full_bits(),
              static_cast<unsigned long long>(an.NumGroups(built.full_bits())),
              static_cast<unsigned long long>(1ull << built.full_bits()),
              an.MissingGroupFactor(built.full_bits()), b_chosen,
              built.count_table().num_groups());
  bench::JsonLine("correlated_dimensions")
      .Str("case", label)
      .Num("full_bits", built.full_bits())
      .Num("observed_groups",
           static_cast<double>(an.NumGroups(built.full_bits())))
      .Num("missing_factor", an.MissingGroupFactor(built.full_bits()))
      .Num("chosen_bits", b_chosen)
      .Emit();
  // Histogram at the chosen granularity.
  std::vector<uint64_t> hist = built.analysis().Histogram(b_chosen);
  std::printf("  log2 group-size histogram @b=%d:", b_chosen);
  for (size_t x = 0; x < hist.size(); ++x) {
    if (hist[x]) {
      std::printf(" [2^%zu:%llu]", x,
                  static_cast<unsigned long long>(hist[x]));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Correlated dimensions (puff pastry) ==\n\n");
  RunCase("independent", 0.0, 200000);
  RunCase("50%% correlated", 0.5, 200000);
  RunCase("hierarchical (100%%)", 1.0, 200000);
  std::printf(
      "\nexpected shape: the more correlated the dimensions, the fewer of\n"
      "the 2^16 potential groups exist; Algorithm 1 compensates with a\n"
      "higher chosen granularity while keeping group sizes >= AR.\n");
  return 0;
}
