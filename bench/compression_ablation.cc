// Storage-footprint ablation. The paper notes "all three schemes use
// automatic compression, take roughly 55GB on disk" — i.e. BDCC's
// reordering does not inflate storage. This bench measures the estimated
// compressed footprint (per-block best-of codec) for Plain vs BDCC layouts
// and per-table ratios; clustering typically *helps* RLE/delta codecs on
// the clustered columns.
#include <cstdio>

#include "bench/bench_util.h"
#include "storage/compression/codec.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

namespace {

struct Footprint {
  uint64_t raw = 0;
  uint64_t compressed = 0;
};

Footprint Measure(const Table& t) {
  Footprint f;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    auto est = compression::EstimateCompression(t.column(c));
    f.raw += est.raw_bytes;
    f.compressed += est.compressed_bytes;
  }
  return f;
}

}  // namespace

int main() {
  double sf = BenchScaleFactor(0.02);
  std::printf("== Storage footprint: plain vs BDCC, automatic compression "
              "(SF %.3f) ==\n\n",
              sf);
  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  options.build_pk = false;
  auto db = tpch::TpchDb::Create(options).ValueOrDie();

  std::printf("%-10s | %10s %12s %12s | ratio plain  ratio bdcc\n", "table",
              "raw", "plain-comp", "bdcc-comp");
  uint64_t raw_total = 0, plain_total = 0, bdcc_total = 0;
  for (const auto& [name, bt] : db->bdcc_tables()) {
    const Table* plain = db->plain().storage(name);
    Footprint fp = Measure(*plain);
    Footprint fb = Measure(bt.data());
    raw_total += fp.raw;
    plain_total += fp.compressed;
    bdcc_total += fb.compressed;
    std::printf("%-10s | %10s %12s %12s | %10.2fx %10.2fx\n", name.c_str(),
                HumanBytes(fp.raw).c_str(), HumanBytes(fp.compressed).c_str(),
                HumanBytes(fb.compressed).c_str(),
                double(fp.raw) / double(fp.compressed),
                double(fb.raw) / double(fb.compressed));
    JsonLine("compression_ablation")
        .Str("table", name)
        .Num("raw_bytes", static_cast<double>(fp.raw))
        .Num("plain_compressed_bytes", static_cast<double>(fp.compressed))
        .Num("bdcc_compressed_bytes", static_cast<double>(fb.compressed))
        .Emit();
  }
  std::printf("-----------+\n");
  std::printf("%-10s | %10s %12s %12s |\n", "total",
              HumanBytes(raw_total).c_str(), HumanBytes(plain_total).c_str(),
              HumanBytes(bdcc_total).c_str());
  std::printf(
      "\nshape check: BDCC compressed size within ~±10%% of plain "
      "(paper: both ~55GB at SF100). measured bdcc/plain = %.3f\n"
      "(note: the BDCC layout additionally stores the _bdcc_ key column, "
      "which is near-sorted and compresses to almost nothing)\n",
      double(bdcc_total) / double(plain_total));
  return 0;
}
