// Reproduces Figure 3 of the paper: per-query peak operator memory for the
// three schemes, plus run totals / averages / peaks.
//
// The paper (SF100): run totals Plain 38.09GB, PK 10.74GB, BDCC 1.68GB;
// averages 1.59GB vs 0.09GB (plain vs BDCC); peak 8GB -> 275MB. The shape
// to reproduce: BDCC's sandwiched joins and aggregations keep *every*
// query's memory low and predictable, PK helps only where merge joins
// remove the big hash table, Plain materializes full build sides.
#include <cstdio>

#include "bench/bench_util.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

int main() {
  double sf = BenchScaleFactor();
  std::printf("== Figure 3: TPC-H peak operator memory (SF %.3f) ==\n", sf);

  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  auto db_result = tpch::TpchDb::Create(options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "db build failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();

  const opt::Scheme schemes[] = {opt::Scheme::kPlain, opt::Scheme::kPk,
                                 opt::Scheme::kBdcc};
  std::printf("%-4s | %12s %12s %12s | plain/bdcc\n", "Q", "plain", "pk",
              "bdcc");
  uint64_t total[3] = {0, 0, 0};
  uint64_t peak[3] = {0, 0, 0};
  for (int q = 1; q <= tpch::kNumTpchQueries; ++q) {
    uint64_t mem[3];
    QueryRun runs[3];
    for (int s = 0; s < 3; ++s) {
      runs[s] = RunQueryCold(db.get(), schemes[s], q);
      if (!runs[s].ok) {
        std::fprintf(stderr, "Q%d %s failed: %s\n", q,
                     opt::SchemeName(schemes[s]), runs[s].error.c_str());
        return 1;
      }
      mem[s] = runs[s].peak_memory;
      total[s] += mem[s];
      peak[s] = std::max(peak[s], mem[s]);
    }
    double ratio = mem[2] > 0 ? double(mem[0]) / double(mem[2]) : 0.0;
    std::printf("Q%-3d | %12s %12s %12s | %8.1fx\n", q,
                HumanBytes(mem[0]).c_str(), HumanBytes(mem[1]).c_str(),
                HumanBytes(mem[2]).c_str(), ratio);
    for (int s = 0; s < 3; ++s) {
      JsonLine line("fig3_memory_usage");
      line.Num("q", q)
          .Str("scheme", opt::SchemeName(schemes[s]))
          .Num("sf", sf)
          .Num("peak_bytes", static_cast<double>(mem[s]));
      AddLifecycleCounters(line, runs[s]);
      line.Emit();
    }
  }
  std::printf("-----+--------------------------------------+\n");
  std::printf("run  | %12s %12s %12s |\n", HumanBytes(total[0]).c_str(),
              HumanBytes(total[1]).c_str(), HumanBytes(total[2]).c_str());
  std::printf("avg  | %12s %12s %12s |\n",
              HumanBytes(total[0] / 22).c_str(),
              HumanBytes(total[1] / 22).c_str(),
              HumanBytes(total[2] / 22).c_str());
  std::printf("peak | %12s %12s %12s |\n", HumanBytes(peak[0]).c_str(),
              HumanBytes(peak[1]).c_str(), HumanBytes(peak[2]).c_str());
  std::printf(
      "\npaper (SF100): totals 38.09GB / 10.74GB / 1.68GB; "
      "avg 1.59GB vs 0.09GB; peak 8GB vs 275MB\n"
      "shape checks:  plain/bdcc total = %.1fx (paper 22.7x)\n"
      "               pk/bdcc    total = %.1fx (paper 6.4x)\n"
      "               plain/bdcc peak  = %.1fx (paper 29x)\n",
      double(total[0]) / double(total[2]),
      double(total[1]) / double(total[2]),
      double(peak[0]) / double(peak[2]));
  return 0;
}
