// Reproduces Figure 2 of the paper: cold execution times of all 22 TPC-H
// queries under the Plain, PK and BDCC storage schemes, plus run totals.
//
// The paper (SF100, 4xSSD): Plain 630.82s, PK 491.33s, BDCC 284.43s —
// BDCC > 2x faster than Plain and ~42% faster than PK. We reproduce the
// *shape* at an in-memory scale factor (BDCC_BENCH_SF, default 0.05):
// who wins, roughly by what factor, and which queries benefit (the paper's
// detailed analysis: Q1 ~neutral, Q16 slight loss, wins elsewhere).
// Also reported: simulated cold I/O time from the device model, which
// captures the access-pattern effects an in-memory run hides.
#include <cstdio>

#include "bench/bench_util.h"

using namespace bdcc;        // NOLINT
using namespace bdcc::bench;  // NOLINT

int main(int argc, char** argv) {
  bool explain = argc > 1 && std::string(argv[1]) == "--explain";
  double sf = BenchScaleFactor();
  std::printf("== Figure 2: TPC-H execution times (SF %.3f) ==\n", sf);

  tpch::TpchDbOptions options;
  options.scale_factor = sf;
  auto db_result = tpch::TpchDb::Create(options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "db build failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).value();

  const opt::Scheme schemes[] = {opt::Scheme::kPlain, opt::Scheme::kPk,
                                 opt::Scheme::kBdcc};
  std::printf("%-4s | %10s %10s %10s | %9s %9s %9s | %s\n", "Q",
              "plain(ms)", "pk(ms)", "bdcc(ms)", "ioP(ms)", "ioK(ms)",
              "ioB(ms)", "rows");
  double total_ms[3] = {0, 0, 0};
  double total_io[3] = {0, 0, 0};
  for (int q = 1; q <= tpch::kNumTpchQueries; ++q) {
    QueryRun runs[3];
    for (int s = 0; s < 3; ++s) {
      runs[s] = RunQueryCold(db.get(), schemes[s], q);
      if (!runs[s].ok) {
        std::fprintf(stderr, "Q%d %s failed: %s\n", q,
                     opt::SchemeName(schemes[s]), runs[s].error.c_str());
        return 1;
      }
      total_ms[s] += runs[s].wall_ms;
      total_io[s] += runs[s].sim_io_ms;
    }
    std::printf("Q%-3d | %10.2f %10.2f %10.2f | %9.2f %9.2f %9.2f | %llu\n",
                q, runs[0].wall_ms, runs[1].wall_ms, runs[2].wall_ms,
                runs[0].sim_io_ms, runs[1].sim_io_ms, runs[2].sim_io_ms,
                static_cast<unsigned long long>(runs[2].rows));
    for (int s = 0; s < 3; ++s) {
      JsonLine line("fig2_execution_time");
      line.Num("q", q)
          .Str("scheme", opt::SchemeName(schemes[s]))
          .Num("sf", sf)
          .Num("wall_ms", runs[s].wall_ms)
          .Num("sim_io_ms", runs[s].sim_io_ms)
          .Num("rows", static_cast<double>(runs[s].rows));
      AddLifecycleCounters(line, runs[s]);
      line.Emit();
    }
    if (explain) {
      for (const std::string& n : runs[2].notes) {
        std::printf("       bdcc: %s\n", n.c_str());
      }
    }
  }
  std::printf("-----+-----------------------------------+\n");
  std::printf("run  | %10.2f %10.2f %10.2f | %9.2f %9.2f %9.2f |\n",
              total_ms[0], total_ms[1], total_ms[2], total_io[0], total_io[1],
              total_io[2]);
  std::printf(
      "\npaper (SF100): plain 630.82s, pk 491.33s, bdcc 284.43s\n"
      "shape checks:  bdcc/plain wall = %.2fx (paper 2.22x)\n"
      "               bdcc/pk    wall = %.2fx (paper 1.73x)\n"
      "               bdcc/plain sim-I/O = %.2fx\n",
      total_ms[0] / total_ms[2], total_ms[1] / total_ms[2],
      total_io[2] > 0 ? total_io[0] / total_io[2] : 0.0);
  return 0;
}
