// Reproduces the Algorithm 1 self-tuning behaviour, including the paper's
// LINEITEM anecdote: with the densest column (l_comment) occupying P pages,
// the chosen count-table granularity approaches ceil(log2 P) — one group
// per efficient random access unit (paper: 550000 pages -> 20 bits).
//
// Sweeps the efficient random access size AR across device profiles
// (paper Section III: flash 32KB, magnetic disk a few MB) and shows the
// chosen granularity shrinking as AR grows.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/bits.h"

using namespace bdcc;         // NOLINT
using namespace bdcc::bench;  // NOLINT

int main() {
  double sf = BenchScaleFactor(0.05);
  std::printf("== Algorithm 1 self-tuned granularity (SF %.3f) ==\n\n", sf);

  struct ArCase {
    const char* label;
    uint64_t ar;
  };
  io::DeviceModel ssd{io::DeviceProfile::SsdRaid0()};
  io::DeviceModel disk{io::DeviceProfile::MagneticDisk()};
  ArCase cases[] = {
      {"4KB", 4 * 1024},
      {"ssd-raid0 AR", ssd.EfficientRandomAccessSize()},
      {"256KB", 256 * 1024},
      {"magnetic-disk AR", disk.EfficientRandomAccessSize()},
  };

  std::printf("%-18s %12s | %8s %8s %8s | %s\n", "AR", "(bytes)", "LINEITEM",
              "ORDERS", "PARTSUPP", "ceil(log2 pages(l_comment)))");
  for (const ArCase& c : cases) {
    tpch::TpchDbOptions options;
    options.scale_factor = sf;
    options.build_plain = false;
    options.build_pk = false;
    options.advisor.build.tuning.efficient_access_bytes = c.ar;
    auto db = tpch::TpchDb::Create(options).ValueOrDie();
    const auto& tables = db->bdcc_tables();
    const BdccTable& li = tables.at("LINEITEM");
    // The paper's formula: pages of the densest column at this AR.
    double bytes =
        li.decision().densest_bytes_per_row * double(li.logical_rows());
    int log2pages =
        bits::CeilLog2(uint64_t(std::ceil(bytes / double(c.ar))));
    std::printf("%-18s %12llu | %8d %8d %8d | %d\n", c.label,
                static_cast<unsigned long long>(c.ar), li.count_bits(),
                tables.at("ORDERS").count_bits(),
                tables.at("PARTSUPP").count_bits(), log2pages);
    JsonLine("granularity_selftune")
        .Str("ar", c.label)
        .Num("ar_bytes", static_cast<double>(c.ar))
        .Num("lineitem_bits", li.count_bits())
        .Num("orders_bits", tables.at("ORDERS").count_bits())
        .Num("partsupp_bits", tables.at("PARTSUPP").count_bits())
        .Emit();
  }
  std::printf(
      "\npaper: at SF100 LINEITEM's l_comment had 550000 32KB pages and\n"
      "Algorithm 1 chose ceil(log2 550000) = 20 bits. The invariant to\n"
      "observe: chosen bits track ceil(log2(densest column bytes / AR)),\n"
      "shrinking as AR grows (magnetic disk), growing with table size.\n");
  return 0;
}
